// Shared plumbing for the reproduction benches: corpus builders, trained
// detectors, and run helpers. Every bench binary regenerates one table or
// figure from the paper's evaluation section and prints the corresponding
// rows/series; see EXPERIMENTS.md for paper-vs-measured.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/responses.hpp"
#include "core/traces.hpp"
#include "core/valkyrie.hpp"
#include "ml/dataset.hpp"
#include "ml/stat_detector.hpp"
#include "sim/platform.hpp"
#include "workloads/benchmarks.hpp"

namespace valkyrie::bench {

/// Workload factories over the benign benchmark suites.
[[nodiscard]] std::vector<core::WorkloadFactory> benign_factories(
    const std::vector<workloads::BenchmarkSpec>& specs);

/// Trains the paper's "simple statistical detector" (§VI-A) on benign
/// traces from a training slice of SPEC-2006 and calibrates its threshold
/// to ~`target_fpr` false-positive epochs.
[[nodiscard]] ml::StatisticalDetector trained_stat_detector(
    double target_fpr = 0.03, const sim::PlatformProfile& platform = {},
    std::uint64_t seed = 0xbe9c);

/// The ransomware-vs-benign trace corpus of Fig. 1 / Fig. 6b: all 67
/// ransomware samples plus SPEC-2006 benign programs, `epochs` samples each.
[[nodiscard]] ml::TraceSet ransomware_corpus_traces(
    std::size_t epochs, std::uint64_t seed = 0xf19);

/// Runs one workload to completion (or max_epochs) without any response;
/// returns epochs taken (0 if it never completed).
struct BaselineRun {
  std::uint64_t epochs_to_complete = 0;
  double total_progress = 0.0;
};
[[nodiscard]] BaselineRun run_unthrottled(
    std::unique_ptr<sim::Workload> workload, std::size_t max_epochs,
    const sim::PlatformProfile& platform = {}, std::uint64_t seed = 1);

/// Runs one workload under Valkyrie; returns the policy-run result.
[[nodiscard]] core::PolicyRunResult run_under_valkyrie(
    std::unique_ptr<sim::Workload> workload, const ml::Detector& detector,
    const ml::Detector* terminal_detector, core::ValkyrieConfig config,
    std::unique_ptr<core::Actuator> actuator, std::size_t max_epochs,
    const sim::PlatformProfile& platform = {}, std::uint64_t seed = 1);

}  // namespace valkyrie::bench
