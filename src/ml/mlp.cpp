#include "ml/mlp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "ml/fast_math.hpp"
#include "util/simd.hpp"

namespace valkyrie::ml {
namespace {

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

// Tier-dispatched activations for the inference paths. The `fast` flag is
// loop-invariant wherever these are called, so the compiler unswitches the
// branch; the fast bodies are straight-line arithmetic the batch kernel
// vectorizes across columns. forward() (training) never goes through these.
double hid_act(double x, bool fast) noexcept {
  return fast ? fast_tanh(x) : std::tanh(x);
}
double out_act(double x, bool fast) noexcept {
  return fast ? fast_sigmoid(x) : sigmoid(x);
}

}  // namespace

Mlp::Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed)
    : sizes_(std::move(layer_sizes)) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output layers");
  }
  if (sizes_.back() != 1) {
    throw std::invalid_argument("Mlp: binary classifier needs 1 output unit");
  }
  util::Rng rng(seed);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.in = sizes_[l];
    layer.out = sizes_[l + 1];
    const double scale =
        std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    layer.weights.resize(layer.in * layer.out);
    for (double& w : layer.weights) w = rng.uniform(-scale, scale);
    layer.bias.assign(layer.out, 0.0);
    layer.w_vel.assign(layer.weights.size(), 0.0);
    layer.b_vel.assign(layer.out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::vector<std::vector<double>> Mlp::forward(
    std::span<const double> input) const {
  if (input.size() != sizes_.front()) {
    throw std::invalid_argument("Mlp: input dimension mismatch");
  }
  std::vector<std::vector<double>> acts;
  acts.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> z(layer.out, 0.0);
    const std::vector<double>& prev = acts.back();
    for (std::size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w_row = layer.weights.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) sum += w_row[i] * prev[i];
      const bool is_output = (l + 1 == layers_.size());
      z[o] = is_output ? sigmoid(sum) : std::tanh(sum);
    }
    acts.push_back(std::move(z));
  }
  return acts;
}

double Mlp::predict(std::span<const double> input) const {
  if (input.size() != sizes_.front()) {
    throw std::invalid_argument("Mlp: input dimension mismatch");
  }
  // Inference needs no per-layer activation record; ping-pong between two
  // stack buffers instead so the per-epoch hot path never allocates.
  // (Networks wider than the scratch fall back to the allocating forward()
  // pass, which is always bit-exact regardless of the tier — none of the
  // paper's architectures take that path.)
  constexpr std::size_t kStackWidth = 64;
  for (const std::size_t s : sizes_) {
    if (s > kStackWidth) return forward(input).back().front();
  }
  const bool fast = tier_ == InferenceTier::kFast;
  std::array<double, kStackWidth> buf_a;
  std::array<double, kStackWidth> buf_b;
  std::copy(input.begin(), input.end(), buf_a.begin());
  double* prev = buf_a.data();
  double* next = buf_b.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool is_output = (l + 1 == layers_.size());
    // Four neurons at a time: each neuron's sum still accumulates in the
    // exact i order above (bit-identical outputs), but the four dependency
    // chains interleave, so the serial FP-add latency that dominates a
    // single chain overlaps ~4x. This is the per-epoch inference hot path:
    // every monitored process pays one predict() per epoch.
    std::size_t o = 0;
    for (; o + 4 <= layer.out; o += 4) {
      double s0 = layer.bias[o];
      double s1 = layer.bias[o + 1];
      double s2 = layer.bias[o + 2];
      double s3 = layer.bias[o + 3];
      const double* w0 = layer.weights.data() + o * layer.in;
      const double* w1 = w0 + layer.in;
      const double* w2 = w1 + layer.in;
      const double* w3 = w2 + layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) {
        const double p = prev[i];
        s0 += w0[i] * p;
        s1 += w1[i] * p;
        s2 += w2[i] * p;
        s3 += w3[i] * p;
      }
      if (is_output) {
        next[o] = out_act(s0, fast);
        next[o + 1] = out_act(s1, fast);
        next[o + 2] = out_act(s2, fast);
        next[o + 3] = out_act(s3, fast);
      } else {
        next[o] = hid_act(s0, fast);
        next[o + 1] = hid_act(s1, fast);
        next[o + 2] = hid_act(s2, fast);
        next[o + 3] = hid_act(s3, fast);
      }
    }
    for (; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w_row = layer.weights.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) sum += w_row[i] * prev[i];
      next[o] = is_output ? out_act(sum, fast) : hid_act(sum, fast);
    }
    std::swap(prev, next);
  }
  return prev[0];
}

VALKYRIE_TARGET_CLONES
void Mlp::predict_batch(const double* input, std::size_t stride, std::size_t n,
                        double* out, const double* scale_mean,
                        const double* scale_inv) const {
  constexpr std::size_t kStackWidth = 64;
  for (const std::size_t s : sizes_) {
    if (s > kStackWidth) {
      // Wider than the scratch buffers: gather (and standardise) each
      // column and take the scalar path (which itself falls back to the
      // allocating forward()).
      std::vector<double> column(sizes_.front());
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t f = 0; f < column.size(); ++f) {
          const double x = input[f * stride + c];
          column[f] =
              scale_mean != nullptr ? (x - scale_mean[f]) * scale_inv[f] : x;
        }
        out[c] = predict(column);
      }
      return;
    }
  }

  // Column blocks of 8 with 4-neuron register tiles: the c loops below are
  // unit-stride over a fixed-width block, so they vectorize, while each
  // (neuron, column) sum still accumulates in the exact ascending-i order
  // of the scalar path — the batch is a layout change, not a math change.
  // Layer 0 reads the input matrix in place (src_stride = the caller's row
  // stride); deeper layers ping-pong between two L1-resident blocks.
  constexpr std::size_t kBlock = 8;
  const bool fast = tier_ == InferenceTier::kFast;
  double buf_a[kStackWidth * kBlock];
  double buf_b[kStackWidth * kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t bw = std::min(kBlock, n - base);
    const double* src = input + base;
    std::size_t src_stride = stride;
    double* next = buf_a;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      const bool is_output = (l + 1 == layers_.size());
      // Standardisation is fused into the layer-0 read: the scaled value
      // is computed exactly as FeatureScaler::transform would and then
      // consumed, so the plane rows are swept once with no scratch
      // round-trip and the bits still match transform-then-predict.
      const bool fuse_scale = l == 0 && scale_mean != nullptr;
      std::size_t o = 0;
      for (; o + 4 <= layer.out; o += 4) {
        double acc[4][kBlock];
        for (std::size_t j = 0; j < 4; ++j) {
          for (std::size_t c = 0; c < bw; ++c) acc[j][c] = layer.bias[o + j];
        }
        const double* w0 = layer.weights.data() + o * layer.in;
        const double* w1 = w0 + layer.in;
        const double* w2 = w1 + layer.in;
        const double* w3 = w2 + layer.in;
        for (std::size_t i = 0; i < layer.in; ++i) {
          const double* p = src + i * src_stride;
          const double c0 = w0[i];
          const double c1 = w1[i];
          const double c2 = w2[i];
          const double c3 = w3[i];
          if (fuse_scale) {
            const double m = scale_mean[i];
            const double v = scale_inv[i];
            for (std::size_t c = 0; c < bw; ++c) {
              const double pc = (p[c] - m) * v;
              acc[0][c] += c0 * pc;
              acc[1][c] += c1 * pc;
              acc[2][c] += c2 * pc;
              acc[3][c] += c3 * pc;
            }
          } else {
            for (std::size_t c = 0; c < bw; ++c) {
              const double pc = p[c];
              acc[0][c] += c0 * pc;
              acc[1][c] += c1 * pc;
              acc[2][c] += c2 * pc;
              acc[3][c] += c3 * pc;
            }
          }
        }
        for (std::size_t j = 0; j < 4; ++j) {
          double* row = next + (o + j) * kBlock;
          if (fast) {
            // Straight-line approximations: this loop vectorizes across the
            // column block, which is where the fast tier earns its keep.
            for (std::size_t c = 0; c < bw; ++c) {
              row[c] =
                  is_output ? fast_sigmoid(acc[j][c]) : fast_tanh(acc[j][c]);
            }
          } else {
            for (std::size_t c = 0; c < bw; ++c) {
              row[c] = is_output ? sigmoid(acc[j][c]) : std::tanh(acc[j][c]);
            }
          }
        }
      }
      for (; o < layer.out; ++o) {
        double acc[kBlock];
        for (std::size_t c = 0; c < bw; ++c) acc[c] = layer.bias[o];
        const double* w_row = layer.weights.data() + o * layer.in;
        for (std::size_t i = 0; i < layer.in; ++i) {
          const double* p = src + i * src_stride;
          const double w = w_row[i];
          if (fuse_scale) {
            const double m = scale_mean[i];
            const double v = scale_inv[i];
            for (std::size_t c = 0; c < bw; ++c) {
              acc[c] += w * ((p[c] - m) * v);
            }
          } else {
            for (std::size_t c = 0; c < bw; ++c) acc[c] += w * p[c];
          }
        }
        double* row = next + o * kBlock;
        if (fast) {
          for (std::size_t c = 0; c < bw; ++c) {
            row[c] = is_output ? fast_sigmoid(acc[c]) : fast_tanh(acc[c]);
          }
        } else {
          for (std::size_t c = 0; c < bw; ++c) {
            row[c] = is_output ? sigmoid(acc[c]) : std::tanh(acc[c]);
          }
        }
      }
      src = next;
      src_stride = kBlock;
      next = next == buf_a ? buf_b : buf_a;
    }
    for (std::size_t c = 0; c < bw; ++c) out[base + c] = src[c];
  }
}

void Mlp::train(std::vector<Example> examples, const MlpTrainOptions& options) {
  if (examples.empty()) {
    throw std::invalid_argument("Mlp::train: empty dataset");
  }
  // Class weights balance the loss when one class dominates the trace mix.
  const auto n_pos = static_cast<double>(
      std::count_if(examples.begin(), examples.end(),
                    [](const Example& e) { return e.malicious; }));
  const auto n_total = static_cast<double>(examples.size());
  const double n_neg = n_total - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) {
    throw std::invalid_argument("Mlp::train: need both classes");
  }
  const double w_pos = n_total / (2.0 * n_pos);
  const double w_neg = n_total / (2.0 * n_neg);

  util::Rng rng(options.seed);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    shuffle(examples, rng);
    for (const Example& ex : examples) {
      const std::vector<std::vector<double>> acts = forward(ex.features);
      const double target = ex.malicious ? 1.0 : 0.0;
      const double class_weight = ex.malicious ? w_pos : w_neg;

      // Output delta for sigmoid + binary cross-entropy: (p - y).
      std::vector<double> delta{(acts.back().front() - target) * class_weight};

      for (std::size_t li = layers_.size(); li-- > 0;) {
        Layer& layer = layers_[li];
        const std::vector<double>& input_act = acts[li];
        // Delta for the previous layer (before this layer's update).
        std::vector<double> prev_delta;
        if (li > 0) {
          prev_delta.assign(layer.in, 0.0);
          for (std::size_t o = 0; o < layer.out; ++o) {
            const double* w_row = layer.weights.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) {
              prev_delta[i] += w_row[i] * delta[o];
            }
          }
          // tanh'(z) = 1 - a^2 where a is the activation.
          for (std::size_t i = 0; i < layer.in; ++i) {
            prev_delta[i] *= (1.0 - input_act[i] * input_act[i]);
          }
        }
        for (std::size_t o = 0; o < layer.out; ++o) {
          double* w_row = layer.weights.data() + o * layer.in;
          double* v_row = layer.w_vel.data() + o * layer.in;
          for (std::size_t i = 0; i < layer.in; ++i) {
            const double grad = delta[o] * input_act[i];
            v_row[i] = options.momentum * v_row[i] -
                       options.learning_rate * grad;
            w_row[i] += v_row[i];
          }
          layer.b_vel[o] =
              options.momentum * layer.b_vel[o] - options.learning_rate * delta[o];
          layer.bias[o] += layer.b_vel[o];
        }
        delta = std::move(prev_delta);
      }
    }
  }
}

Inference MlpDetector::infer(std::span<const hpc::HpcSample> window) const {
  if (window.empty()) return Inference::kBenign;
  const std::vector<double> features = window_features(window);
  std::array<double, kWindowFeatureDim> scaled;
  scaler_.transform(features, scaled);
  return mlp_.predict(scaled) > 0.5 ? Inference::kMalicious
                                    : Inference::kBenign;
}

Inference MlpDetector::infer(const WindowSummary& summary) const {
  if (summary.count == 0) return Inference::kBenign;
  std::array<double, kWindowFeatureDim> features = summary.features();
  scaler_.transform(features, features);  // standardise in place
  return mlp_.predict(features) > 0.5 ? Inference::kMalicious
                                      : Inference::kBenign;
}

namespace {

/// Classify loop behind MlpDetector::infer_batch, as a free function
/// because GCC cannot multiversion virtual members. The mean and stddev
/// row groups of the plane are contiguous ([mean rows][stddev rows], the
/// layout SimSystem maintains), so the concatenated kWindowFeatureDim x
/// stride matrix feeds predict_batch directly with the standardisation
/// fused into its layer-0 sweep — no per-process features() copy, no
/// scaling scratch, one pass over the plane rows.
VALKYRIE_TARGET_CLONES
void mlp_infer_batch_kernel(const Mlp& mlp, const double* s_mean,
                            const double* s_inv,
                            const SummaryMatrixView& batch, Inference* out) {
  constexpr std::size_t kCols = 256;
  double prob[kCols];
  for (std::size_t base = 0; base < batch.count; base += kCols) {
    const std::size_t bw = std::min(kCols, batch.count - base);
    mlp.predict_batch(batch.mean + base, batch.stride, bw, prob, s_mean,
                      s_inv);
    for (std::size_t c = 0; c < bw; ++c) {
      out[base + c] = batch.counts[base + c] != 0 && prob[c] > 0.5
                          ? Inference::kMalicious
                          : Inference::kBenign;
    }
  }
}

}  // namespace

void MlpDetector::infer_batch(const SummaryMatrixView& batch,
                              std::span<Inference> out) const {
  if (mlp_.layer_sizes().front() != kWindowFeatureDim ||
      scaler_.dim() != kWindowFeatureDim ||
      batch.stddev != batch.mean + hpc::kFeatureDim * batch.stride) {
    // Unusual geometry or non-adjacent mean/stddev row groups: the scalar
    // loop keeps the bit-equality promise without the fused kernel.
    Detector::infer_batch(batch, out);
    return;
  }
  mlp_infer_batch_kernel(mlp_, scaler_.means().data(),
                         scaler_.inv_stddevs().data(), batch, out.data());
}

std::vector<Example> make_window_examples(const TraceSet& set, util::Rng& rng,
                                          int prefixes_per_trace) {
  std::vector<Example> out;
  for (const LabeledTrace& trace : set.traces) {
    if (trace.samples.empty()) continue;
    for (int k = 0; k < prefixes_per_trace; ++k) {
      const std::size_t len = 1 + rng.below(trace.samples.size());
      const std::span<const hpc::HpcSample> prefix(trace.samples.data(), len);
      out.push_back({window_features(prefix), trace.malicious});
    }
  }
  return out;
}

namespace {

/// Shared training pipeline: window examples -> scaler -> SGD.
MlpDetector train_ann(std::string name, std::vector<std::size_t> layers,
                      const TraceSet& train, std::uint64_t seed,
                      MlpTrainOptions options) {
  util::Rng rng(seed);
  std::vector<Example> examples = make_window_examples(train, rng);
  std::vector<std::vector<double>> raw;
  raw.reserve(examples.size());
  for (const Example& ex : examples) raw.push_back(ex.features);
  FeatureScaler scaler;
  scaler.fit(raw);
  for (Example& ex : examples) ex.features = scaler.transform(ex.features);

  Mlp mlp(std::move(layers), seed);
  options.seed = seed ^ 0x9e3779b9;
  mlp.train(std::move(examples), options);
  return MlpDetector(std::move(name), std::move(mlp), std::move(scaler));
}

}  // namespace

MlpDetector MlpDetector::make_small_ann(const TraceSet& train,
                                        std::uint64_t seed) {
  return train_ann("small-ann", {kWindowFeatureDim, 4, 1}, train, seed, {});
}

MlpDetector MlpDetector::make_large_ann(const TraceSet& train,
                                        std::uint64_t seed) {
  MlpTrainOptions options;
  options.epochs = 80;
  return train_ann("large-ann", {kWindowFeatureDim, 8, 8, 1}, train, seed,
                   options);
}

}  // namespace valkyrie::ml
