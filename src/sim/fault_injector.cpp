#include "sim/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace valkyrie::sim {

FaultInjector::FaultInjector(RunFactory factory, std::uint64_t seed)
    : factory_(std::move(factory)), rng_(seed) {
  if (factory_ == nullptr) {
    throw std::invalid_argument("FaultInjector: null factory");
  }
}

FaultInjector::Report FaultInjector::run(std::size_t epochs,
                                         std::size_t crashes) {
  // Distinct crash points strictly inside the run (a crash before the
  // first step or after the last would degenerate to a plain round-trip).
  std::vector<std::size_t> points;
  if (epochs > 1) {
    crashes = std::min(crashes, epochs - 1);
    while (points.size() < crashes) {
      const std::size_t p = 1 + rng_.below(epochs - 1);
      if (std::find(points.begin(), points.end(), p) == points.end()) {
        points.push_back(p);
      }
    }
    std::sort(points.begin(), points.end());
  }

  Report report;
  Run run = factory_(nullptr);
  std::size_t next_crash = 0;
  for (std::size_t step = 0; step < epochs; ++step) {
    if (next_crash < points.size() && step == points[next_crash]) {
      // Capture the epoch-consistent state, round it through the byte
      // format (what the post-crash process would read back), then kill
      // the whole world and rebuild from the parsed image.
      const snapshot::SnapshotImage image =
          run.driver != nullptr ? snapshot::capture(*run.driver)
                                : snapshot::capture(*run.engine);
      report.crash_epochs.push_back(image.system.epoch);
      const std::vector<std::uint8_t> bytes = snapshot::encode(image);
      const snapshot::SnapshotImage reparsed = snapshot::parse(bytes);
      run = Run{};  // the crash: destroy engine, system and driver
      run = factory_(&reparsed);
      ++report.crashes;
      ++next_crash;
    }
    if (run.driver != nullptr) {
      run.driver->step();
    } else {
      run.engine->step();
    }
  }

  const snapshot::SnapshotImage final_image =
      run.driver != nullptr ? snapshot::capture(*run.driver)
                            : snapshot::capture(*run.engine);
  report.final_snapshot = snapshot::encode(final_image);
  return report;
}

}  // namespace valkyrie::sim
