// Bounded ring-buffer history contract (PR 9): capping per-process sample
// history must change MEMORY, never statistics or determinism. Pre-wrap a
// bounded system is indistinguishable from unbounded; post-wrap the
// history_view() span pair reads the last `capacity` samples oldest-first,
// streaming window statistics stay bit-identical (the accumulator folds
// every sample regardless of retention), engine runs on summary-driven
// detectors are unaffected, and a bounded snapshot round-trips through the
// v4 image (linearized oldest-first) byte-identically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "attacks/cryptominer.hpp"
#include "core/actuator.hpp"
#include "core/valkyrie.hpp"
#include "ml/mlp.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"
#include "workloads/benchmarks.hpp"

namespace valkyrie {
namespace {

using StepMode = core::ValkyrieEngine::StepMode;

hpc::HpcSignature benign_signature() {
  hpc::HpcSignature sig;
  sig.at(hpc::Event::kInstructions) = 3e8;
  sig.at(hpc::Event::kCycles) = 3.5e8;
  sig.at(hpc::Event::kL1dMisses) = 2e6;
  sig.at(hpc::Event::kLlcMisses) = 4e5;
  sig.at(hpc::Event::kMemBandwidth) = 5e7;
  return sig;
}

hpc::HpcSignature attack_signature() {
  hpc::HpcSignature sig;
  sig.at(hpc::Event::kInstructions) = 4e7;
  sig.at(hpc::Event::kCycles) = 3.5e8;
  sig.at(hpc::Event::kLlcMisses) = 4e7;
  sig.at(hpc::Event::kMemBandwidth) = 2e9;
  return sig;
}

class SigWorkload final : public sim::Workload {
 public:
  explicit SigWorkload(hpc::HpcSignature sig) : sig_(sig) {}
  [[nodiscard]] std::string_view name() const override { return "sig"; }
  [[nodiscard]] bool is_attack() const override { return false; }
  [[nodiscard]] std::string_view progress_units() const override {
    return "epochs";
  }
  sim::StepResult run_epoch(const sim::ResourceShares& shares,
                            sim::EpochContext& ctx) override {
    sim::StepResult out;
    out.progress = shares.cpu;
    out.hpc = sig_.sample(*ctx.rng, shares.cpu, ctx.hpc_noise);
    return out;
  }
  [[nodiscard]] double total_progress() const override { return 0.0; }

 private:
  hpc::HpcSignature sig_;
};

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_sample(const hpc::HpcSample& a, const hpc::HpcSample& b,
                        const char* what, std::size_t i) {
  EXPECT_EQ(a.counts, b.counts) << what << " sample " << i;
}

/// Twin systems stepped in lockstep: one unbounded, one capped at `cap`.
struct TwinSystems {
  sim::SimSystem unbounded;
  sim::SimSystem bounded;
  std::vector<sim::ProcessId> pids;

  explicit TwinSystems(std::size_t cap, int processes = 6) {
    bounded.enable_bounded_history(cap);
    for (int i = 0; i < processes; ++i) {
      const hpc::HpcSignature sig =
          i % 3 == 1 ? attack_signature() : benign_signature();
      const sim::ProcessId a =
          unbounded.spawn(std::make_unique<SigWorkload>(sig));
      const sim::ProcessId b =
          bounded.spawn(std::make_unique<SigWorkload>(sig));
      EXPECT_EQ(a, b);
      pids.push_back(a);
    }
  }

  void run(int epochs) {
    for (int e = 0; e < epochs; ++e) {
      unbounded.run_epoch();
      bounded.run_epoch();
    }
  }
};

TEST(RingHistory, PreWrapIdenticalToUnbounded) {
  constexpr std::size_t kCap = 32;
  TwinSystems twins(kCap);
  twins.run(20);  // well under the cap
  for (const sim::ProcessId pid : twins.pids) {
    const auto& full = twins.unbounded.sample_history(pid);
    const sim::SimSystem::HistoryView view = twins.bounded.history_view(pid);
    ASSERT_EQ(view.size(), full.size());
    EXPECT_TRUE(view.newer.empty()) << "no wrap may have happened yet";
    for (std::size_t i = 0; i < full.size(); ++i) {
      expect_same_sample(view[i], full[i], "pre-wrap", i);
    }
  }
}

TEST(RingHistory, PostWrapViewIsTheSuffixOfTheUnboundedRun) {
  constexpr std::size_t kCap = 24;
  TwinSystems twins(kCap);
  twins.run(100);  // wraps several times
  for (const sim::ProcessId pid : twins.pids) {
    const auto& full = twins.unbounded.sample_history(pid);
    ASSERT_EQ(full.size(), 100u);
    const sim::SimSystem::HistoryView view = twins.bounded.history_view(pid);
    ASSERT_EQ(view.size(), kCap) << "retention is exactly the cap";
    EXPECT_FALSE(view.newer.empty()) << "the ring must actually have wrapped";
    const std::size_t offset = full.size() - kCap;
    for (std::size_t i = 0; i < kCap; ++i) {
      expect_same_sample(view[i], full[offset + i], "post-wrap", i);
    }
    // The raw buffer still holds the same kCap samples (rotated), so
    // retired-observability consumers lose nothing.
    EXPECT_EQ(twins.bounded.sample_history(pid).size(), kCap);
  }
}

TEST(RingHistory, WindowStatisticsUnaffectedByBounding) {
  constexpr std::size_t kCap = 16;
  TwinSystems twins(kCap);
  twins.run(80);  // stats fold 80 samples; ring retains 16
  for (const sim::ProcessId pid : twins.pids) {
    const ml::WindowSummary a = twins.unbounded.window_summary(pid);
    const ml::WindowSummary b = twins.bounded.window_summary(pid);
    EXPECT_EQ(a.count, b.count);
    for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
      EXPECT_TRUE(same_bits(a.newest[f], b.newest[f])) << "feature " << f;
      EXPECT_TRUE(same_bits(a.mean[f], b.mean[f])) << "feature " << f;
      EXPECT_TRUE(same_bits(a.stddev[f], b.stddev[f])) << "feature " << f;
    }
    // The bounded summary's raw window reads through the span pair and
    // must cover exactly the retained ring, newest measurement last.
    const std::size_t total = b.window_total();
    EXPECT_EQ(total, kCap);
    const auto& full = twins.unbounded.sample_history(pid);
    for (std::size_t i = 0; i < total; ++i) {
      expect_same_sample(b.window_at(i), full[full.size() - total + i],
                         "summary window", i);
    }
  }
}

ml::TraceSet training_corpus() {
  util::Rng rng(0xc0ffee);
  ml::TraceSet set;
  for (int label = 0; label < 2; ++label) {
    const hpc::HpcSignature sig =
        label == 1 ? attack_signature() : benign_signature();
    for (int t = 0; t < 8; ++t) {
      ml::LabeledTrace trace;
      trace.malicious = label == 1;
      trace.name =
          (trace.malicious ? "attack-" : "benign-") + std::to_string(t);
      for (int i = 0; i < 25; ++i) trace.samples.push_back(sig.sample(rng));
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

/// Snapshot-supported spawn script, pure function of system state.
void scripted_spawn(sim::SimSystem& sys, core::ValkyrieEngine& engine) {
  const std::size_t ordinal = sys.total_spawned();
  const bool attack = ordinal % 6 == 1;
  std::unique_ptr<sim::Workload> workload;
  if (attack) {
    attacks::CryptominerConfig config;
    config.seed = 0xabc0 + ordinal;
    workload = std::make_unique<attacks::CryptominerAttack>(config);
  } else {
    static const std::vector<workloads::BenchmarkSpec> palette =
        workloads::all_single_threaded();
    workloads::BenchmarkSpec spec = palette[ordinal % palette.size()];
    spec.epochs_of_work =
        ordinal % 5 == 2 ? static_cast<double>(30 + ordinal % 20) : 1e9;
    workload = std::make_unique<workloads::BenchmarkWorkload>(std::move(spec));
  }
  const sim::ProcessId pid = sys.spawn(std::move(workload));
  if (ordinal % 7 != 3) {
    engine.attach(pid, core::ValkyrieConfig{},
                  std::make_unique<core::SchedulerWeightActuator>());
  }
}

void scripted_epoch(sim::SimSystem& sys, core::ValkyrieEngine& engine) {
  if (sys.current_epoch() % 29 == 12) scripted_spawn(sys, engine);
  if (sys.current_epoch() % 41 == 20) {
    for (sim::ProcessId pid = 0; pid < sys.total_spawned(); ++pid) {
      if (sys.is_live(pid) && !sys.workload(pid).is_attack()) {
        sys.kill(pid);
        break;
      }
    }
  }
  engine.step();
}

TEST(RingHistory, EngineThreatTrajectoryUnaffectedOnSummaryDetector) {
  // The MLP classifies window SUMMARIES, which bounding never changes —
  // so a bounded engine run must land on identical monitor state even
  // after the rings wrap many times, through churn and recycling.
  const ml::MlpDetector detector =
      ml::MlpDetector::make_small_ann(training_corpus(), 0x5eed);
  sim::SimSystem unbounded;
  sim::SimSystem bounded;
  bounded.enable_bounded_history(16);
  core::ValkyrieEngine engine_u(unbounded, detector, 2, StepMode::kBatched);
  core::ValkyrieEngine engine_b(bounded, detector, 2, StepMode::kBatched);
  for (int i = 0; i < 8; ++i) {
    scripted_spawn(unbounded, engine_u);
    scripted_spawn(bounded, engine_b);
  }
  unbounded.reserve_history(130);
  for (int epoch = 0; epoch < 120; ++epoch) {
    scripted_epoch(unbounded, engine_u);
    scripted_epoch(bounded, engine_b);
  }
  ASSERT_EQ(unbounded.live_processes().size(),
            bounded.live_processes().size());
  for (const sim::ProcessId pid : unbounded.live_processes()) {
    ASSERT_EQ(engine_u.is_attached(pid), engine_b.is_attached(pid));
    if (!engine_u.is_attached(pid)) continue;
    EXPECT_EQ(engine_u.monitor(pid).threat(), engine_b.monitor(pid).threat())
        << "pid " << pid;
    EXPECT_EQ(engine_u.monitor(pid).state(), engine_b.monitor(pid).state())
        << "pid " << pid;
  }
}

TEST(RingHistory, SnapshotRoundTripContinuesByteIdentically) {
  const ml::MlpDetector detector =
      ml::MlpDetector::make_small_ann(training_corpus(), 0x5eed);

  sim::SimSystem golden_sys;
  golden_sys.enable_bounded_history(20);
  core::ValkyrieEngine golden(golden_sys, detector, 2, StepMode::kBatched);
  for (int i = 0; i < 8; ++i) scripted_spawn(golden_sys, golden);
  for (int epoch = 0; epoch < 70; ++epoch) scripted_epoch(golden_sys, golden);
  const std::vector<std::uint8_t> mid =
      snapshot::encode(snapshot::capture(golden));
  for (int epoch = 0; epoch < 50; ++epoch) scripted_epoch(golden_sys, golden);
  const std::vector<std::uint8_t> want =
      snapshot::encode(snapshot::capture(golden));

  // The v4 image carries the capacity; the restored system re-arms the
  // bound without the caller asking (fresh system, no pre-enable), and the
  // linearized rings replay byte-identically.
  const snapshot::SnapshotImage image = snapshot::parse(mid);
  EXPECT_EQ(image.system.history_capacity, 20u);
  sim::SimSystem sys2;
  core::ValkyrieEngine engine2(sys2, detector, 8, StepMode::kFused);
  snapshot::restore(image, engine2, snapshot::RestoreContext{});
  EXPECT_EQ(sys2.history_capacity(), 20u);
  for (int epoch = 0; epoch < 50; ++epoch) scripted_epoch(sys2, engine2);
  EXPECT_EQ(want, snapshot::encode(snapshot::capture(engine2)));
}

TEST(RingHistory, EnableValidatesItsPreconditions) {
  sim::SimSystem sys;
  EXPECT_THROW(sys.enable_bounded_history(0), std::invalid_argument);
  (void)sys.spawn(std::make_unique<SigWorkload>(benign_signature()));
  for (int i = 0; i < 10; ++i) sys.run_epoch();
  // A history longer than the requested cap cannot be bounded in place.
  EXPECT_THROW(sys.enable_bounded_history(4), std::logic_error);
  // A cap that still fits is fine.
  sys.enable_bounded_history(64);
  EXPECT_EQ(sys.history_capacity(), 64u);
}

}  // namespace
}  // namespace valkyrie
