// SupervisedEngine: the self-healing checkpoint/restore/replay loop.
// Injected crashes and genuine step exceptions must both recover to a
// final state byte-identical to the crash-free run; deterministic faults
// must exhaust the per-step recovery cap instead of retrying forever.
// Also covers the hardened file_sink (fsync-then-rename durability, typed
// SerialError(kIo) surfacing through the Snapshotter's worker thread).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "core/supervisor.hpp"
#include "core/valkyrie.hpp"
#include "ml/svm.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshotter.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace valkyrie::core {
namespace {

using StepMode = ValkyrieEngine::StepMode;
using util::SerialError;

ml::TraceSet training_corpus() {
  util::Rng rng(0xc0ffee);
  hpc::HpcSignature benign;
  benign.at(hpc::Event::kInstructions) = 3e8;
  benign.at(hpc::Event::kCycles) = 3.5e8;
  benign.at(hpc::Event::kMemBandwidth) = 5e7;
  hpc::HpcSignature attack;
  attack.at(hpc::Event::kInstructions) = 4e7;
  attack.at(hpc::Event::kLlcMisses) = 4e7;
  attack.at(hpc::Event::kMemBandwidth) = 2e9;
  ml::TraceSet set;
  for (int label = 0; label < 2; ++label) {
    for (int t = 0; t < 6; ++t) {
      ml::LabeledTrace trace;
      trace.malicious = label == 1;
      trace.name = std::to_string(label) + "-" + std::to_string(t);
      for (int i = 0; i < 25; ++i) {
        trace.samples.push_back((label == 1 ? attack : benign).sample(rng));
      }
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

sim::ScenarioScript churn_script() {
  sim::ScenarioScript script;
  script.seed = 0x5ca1e;
  script.initial_processes = 12;
  script.arrival_rate = 0.4;
  script.attack_fraction = 0.15;
  script.attack_families = {sim::AttackFamily::kCryptominer,
                            sim::AttackFamily::kRansomware,
                            sim::AttackFamily::kExfiltrator};
  script.mean_lifetime = 60.0;
  script.kill_exit_fraction = 0.6;
  script.bursts = {{40, 4}, {170, 3}};
  script.campaigns = {{80, 6, 15, sim::AttackFamily::kRansomware},
                      {120, 5, 20, sim::AttackFamily::kCryptominer}};
  return script;
}

constexpr std::size_t kEpochs = 200;

SupervisedEngine::WorldFactory scenario_factory(const ml::Detector& detector,
                                                std::size_t threads,
                                                StepMode mode) {
  return [&detector, threads,
          mode](const snapshot::SnapshotImage* image) -> SupervisedWorld {
    SupervisedWorld world;
    world.system = std::make_unique<sim::SimSystem>();
    world.engine =
        std::make_unique<ValkyrieEngine>(*world.system, detector, threads, mode);
    if (image == nullptr) {
      world.driver =
          std::make_unique<sim::ScenarioDriver>(*world.engine, churn_script());
    } else {
      snapshot::restore(*image, *world.engine, snapshot::RestoreContext{});
      world.driver = std::make_unique<sim::ScenarioDriver>(
          *world.engine, churn_script(), image->driver);
    }
    return world;
  };
}

std::vector<std::uint8_t> golden_run(const ml::Detector& detector) {
  const SupervisedWorld world =
      scenario_factory(detector, 2, StepMode::kFused)(nullptr);
  for (std::size_t i = 0; i < kEpochs; ++i) world.driver->step();
  return snapshot::encode(snapshot::capture(*world.driver));
}

TEST(Supervisor, InjectedCrashesRecoverToTheGoldenState) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const std::vector<std::uint8_t> golden = golden_run(detector);

  SupervisedEngine::Config config;
  config.checkpoint_interval = 16;
  config.crash_epochs = {57, 130};
  SupervisedEngine supervisor(scenario_factory(detector, 2, StepMode::kFused),
                              config);
  supervisor.run(kEpochs);

  EXPECT_EQ(snapshot::encode(snapshot::capture(*supervisor.driver())), golden)
      << "supervised run with 2 crashes diverged from the crash-free run";
  // latest_checkpoint() flushes the encoder, so every requested checkpoint
  // has been sink-confirmed by the time health is read.
  EXPECT_FALSE(supervisor.latest_checkpoint().empty());
  const SupervisedEngine::Health health = supervisor.health();
  EXPECT_EQ(health.steps, kEpochs);
  EXPECT_EQ(health.injected_crashes, 2u);
  EXPECT_EQ(health.recoveries, 2u);
  // Crash at 57 restores the step-48 checkpoint (9 epochs replayed); crash
  // at 130 restores step 128 (2 replayed).
  EXPECT_EQ(health.epochs_replayed, 11u);
  EXPECT_EQ(health.worst_replay, 9u);
  EXPECT_EQ(health.checkpoint_failures, 0u);
  EXPECT_EQ(health.fallback_recoveries, 0u);
  // Baseline + every 16th of 200 steps; replay never double-checkpoints.
  EXPECT_EQ(health.checkpoints, 1u + kEpochs / 16);
  // The recovery log prices each rebuild individually.
  ASSERT_EQ(supervisor.recovery_log().size(), 2u);
  EXPECT_EQ(supervisor.recovery_log()[0].at_step, 57u);
  EXPECT_EQ(supervisor.recovery_log()[0].replay_epochs, 9u);
  EXPECT_FALSE(supervisor.recovery_log()[0].fallback);
  EXPECT_EQ(supervisor.recovery_log()[1].at_step, 130u);
  EXPECT_EQ(supervisor.recovery_log()[1].replay_epochs, 2u);
  EXPECT_FALSE(supervisor.recovery_log()[1].fallback);
}

TEST(Supervisor, RecoveryWorksAcrossStepModesAndWorkerCounts) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const std::vector<std::uint8_t> golden = golden_run(detector);
  // Crash under one engine configuration, recover and finish under it —
  // every configuration must land on the same bytes.
  constexpr std::pair<StepMode, std::size_t> kGrid[] = {
      {StepMode::kSplit, 1}, {StepMode::kBatched, 8}};
  for (const auto& [mode, threads] : kGrid) {
    SupervisedEngine::Config config;
    config.checkpoint_interval = 32;
    config.crash_epochs = {99};
    SupervisedEngine supervisor(scenario_factory(detector, threads, mode),
                                config);
    supervisor.run(kEpochs);
    EXPECT_EQ(snapshot::encode(snapshot::capture(*supervisor.driver())),
              golden)
        << "mode " << static_cast<int>(mode) << ", " << threads << " workers";
  }
}

// --- Genuine step exceptions -------------------------------------------------

/// Forwards to the wrapped detector, but throws on the vote path while the
/// shared fuse holds a positive count (each throw burns one unit). External
/// mutable state — deliberately NOT restored by snapshots — so "transient"
/// (count 1) and "deterministic" (count huge) failures are both expressible.
class FusedThrowDetector final : public ml::Detector {
 public:
  FusedThrowDetector(const ml::Detector& inner, std::shared_ptr<int> fuse)
      : inner_(inner), fuse_(std::move(fuse)) {}

  [[nodiscard]] std::string_view name() const override {
    return inner_.name();
  }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return inner_.state_hash();
  }
  [[nodiscard]] std::optional<double> vote_fraction() const override {
    return inner_.vote_fraction();
  }
  [[nodiscard]] PlaneSections plane_sections() const override {
    return inner_.plane_sections();
  }
  [[nodiscard]] ml::Inference infer(
      std::span<const hpc::HpcSample> window) const override {
    burn();
    return inner_.infer(window);
  }
  [[nodiscard]] ml::Inference infer(
      const ml::WindowSummary& summary) const override {
    burn();
    return inner_.infer(summary);
  }
  [[nodiscard]] bool measurement_vote(
      std::span<const double> features) const override {
    burn();
    return inner_.measurement_vote(features);
  }
  void measurement_votes(const ml::FeatureMatrixView& batch,
                         std::span<std::uint8_t> out) const override {
    burn();
    inner_.measurement_votes(batch, out);
  }
  void infer_batch(const ml::SummaryMatrixView& batch,
                   std::span<ml::Inference> out) const override {
    burn();
    inner_.infer_batch(batch, out);
  }

 private:
  void burn() const {
    if (*fuse_ > 0) {
      --*fuse_;
      throw std::runtime_error("transient detector outage");
    }
  }
  const ml::Detector& inner_;
  std::shared_ptr<int> fuse_;
};

TEST(Supervisor, TransientStepExceptionIsRecoveredAndRetried) {
  const ml::SvmDetector inner = ml::SvmDetector::make(training_corpus(), 3);
  const std::vector<std::uint8_t> golden = golden_run(inner);

  auto fuse = std::make_shared<int>(0);
  const FusedThrowDetector detector(inner, fuse);
  SupervisedEngine::Config config;
  config.checkpoint_interval = 1;  // replay-free retries: pure fuse logic
  SupervisedEngine supervisor(scenario_factory(detector, 2, StepMode::kFused),
                              config);
  for (std::size_t i = 0; i < kEpochs; ++i) {
    if (i == 83) *fuse = 1;  // one epoch's worth of outage
    supervisor.step();
  }
  EXPECT_EQ(supervisor.health().recoveries, 1u);
  EXPECT_EQ(supervisor.health().injected_crashes, 0u);
  EXPECT_EQ(supervisor.health().steps, kEpochs);
  EXPECT_EQ(snapshot::encode(snapshot::capture(*supervisor.driver())), golden)
      << "the retried epoch must replay bit-identically";
}

TEST(Supervisor, DeterministicFaultExhaustsTheRecoveryCap) {
  const ml::SvmDetector inner = ml::SvmDetector::make(training_corpus(), 3);
  auto fuse = std::make_shared<int>(0);
  const FusedThrowDetector detector(inner, fuse);
  SupervisedEngine::Config config;
  config.checkpoint_interval = 1;
  config.max_recoveries_per_step = 3;
  SupervisedEngine supervisor(scenario_factory(detector, 1, StepMode::kFused),
                              config);
  supervisor.run(40);
  *fuse = 1 << 20;  // effectively "fails every attempt"
  EXPECT_THROW(supervisor.step(), std::runtime_error);
  EXPECT_EQ(supervisor.health().recoveries, 3u)
      << "exactly the cap, then rethrow";
  EXPECT_EQ(supervisor.health().steps, 40u) << "the failed step never counts";
  // The world was rebuilt from the last checkpoint: once the fault clears,
  // the supervisor picks up where it left off.
  *fuse = 0;
  supervisor.run(10);
  EXPECT_EQ(supervisor.health().steps, 50u);
}

// --- Checkpoint generations, priced durability, adaptive cadence ------------

TEST(Supervisor, CorruptedLatestCheckpointFallsBackToThePreviousGeneration) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const std::vector<std::uint8_t> golden = golden_run(detector);

  SupervisedEngine::Config config;
  config.checkpoint_interval = 16;
  config.crash_epochs = {100};
  // Damage exactly the checkpoint the crash wants to restore from.
  config.corrupt_checkpoint_epochs = {96};
  SupervisedEngine supervisor(scenario_factory(detector, 2, StepMode::kFused),
                              config);
  supervisor.run(kEpochs);

  EXPECT_EQ(snapshot::encode(snapshot::capture(*supervisor.driver())), golden)
      << "fallback recovery must still converge to the crash-free bytes";
  EXPECT_FALSE(supervisor.latest_checkpoint().empty());  // also flushes
  const SupervisedEngine::Health health = supervisor.health();
  EXPECT_EQ(health.recoveries, 1u);
  EXPECT_EQ(health.fallback_recoveries, 1u)
      << "the torn step-96 checkpoint must force the previous generation";
  // The fallback reaches past step 96 to the step-80 generation: 20 epochs.
  EXPECT_EQ(health.epochs_replayed, 20u);
  EXPECT_EQ(health.worst_replay, 20u);
  ASSERT_EQ(supervisor.recovery_log().size(), 1u);
  EXPECT_EQ(supervisor.recovery_log()[0].at_step, 100u);
  EXPECT_EQ(supervisor.recovery_log()[0].replay_epochs, 20u);
  EXPECT_TRUE(supervisor.recovery_log()[0].fallback);
}

TEST(Supervisor, DurabilityFailuresArePricedNotFatal) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const std::vector<std::uint8_t> golden = golden_run(detector);

  auto fail = std::make_shared<bool>(false);
  SupervisedEngine::Config config;
  config.checkpoint_interval = 16;
  config.crash_epochs = {100};
  config.durability_sink = [fail](std::vector<std::uint8_t>) {
    if (*fail) throw std::runtime_error("disk full");
  };
  SupervisedEngine supervisor(scenario_factory(detector, 2, StepMode::kFused),
                              config);
  for (std::size_t i = 0; i < kEpochs; ++i) {
    if (i == 90) *fail = true;    // the step-96 checkpoint fails to persist
    if (i == 108) *fail = false;  // the disk comes back before step 112's
    supervisor.step();
  }

  EXPECT_EQ(snapshot::encode(snapshot::capture(*supervisor.driver())), golden)
      << "a failed checkpoint must not perturb the world's timeline";
  EXPECT_FALSE(supervisor.latest_checkpoint().empty());  // also flushes
  const SupervisedEngine::Health health = supervisor.health();
  EXPECT_EQ(health.checkpoint_failures, 1u)
      << "exactly the step-96 checkpoint failed";
  // An unconfirmed checkpoint never enters the generations, so the crash at
  // 100 restores step 80 and pays 20 epochs of replay instead of 4.
  EXPECT_EQ(health.recoveries, 1u);
  EXPECT_EQ(health.fallback_recoveries, 0u);
  EXPECT_EQ(health.epochs_replayed, 20u);
  // Baseline + 12 interval checkpoints, minus the one that failed.
  EXPECT_EQ(health.checkpoints, 12u);
}

TEST(Supervisor, AdaptiveCadenceIsDeterministicAndConvergesToTheGoldenState) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const std::vector<std::uint8_t> golden = golden_run(detector);

  SupervisedEngine::Config config;
  config.checkpoint_interval = 64;
  config.adaptive_interval = true;
  config.min_checkpoint_interval = 8;
  config.max_checkpoint_interval = 64;
  config.crash_epochs = {100, 105};
  SupervisedEngine supervisor(scenario_factory(detector, 2, StepMode::kFused),
                              config);
  supervisor.run(kEpochs);

  // Checkpoints never mutate the world, so the adapted schedule lands on
  // the same bytes as ANY other cadence — including the crash-free run's.
  EXPECT_EQ(snapshot::encode(snapshot::capture(*supervisor.driver())), golden);
  // The trajectory is a pure function of the deterministic crash schedule:
  // 64 → 32 (crash at 100) → 16 (crash at 105) → 32 (64-step clean streak
  // ending at 169; the second doubling needs 128 clean steps and never
  // arrives before step 200).
  EXPECT_EQ(supervisor.current_interval(), 32u);
  EXPECT_FALSE(supervisor.latest_checkpoint().empty());  // also flushes
  const SupervisedEngine::Health health = supervisor.health();
  EXPECT_EQ(health.recoveries, 2u);
  // Crash at 100 restores the step-64 checkpoint (36 replayed); the halved
  // interval then checkpoints at 101, so the crash at 105 replays only 4.
  EXPECT_EQ(health.worst_replay, 36u);
  EXPECT_EQ(health.epochs_replayed, 40u);
}

TEST(Supervisor, AdaptiveBoundsAreValidated) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  SupervisedEngine::Config config;
  config.adaptive_interval = true;
  config.checkpoint_interval = 2;  // below the floor
  config.min_checkpoint_interval = 4;
  config.max_checkpoint_interval = 64;
  EXPECT_THROW(SupervisedEngine(scenario_factory(detector, 1, StepMode::kFused),
                                config),
               std::invalid_argument);
}

// --- Hardened file sink ------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("valkyrie_sink_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(Supervisor, FileSinkWritesDurablyAndAtomically) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const SupervisedWorld world =
      scenario_factory(detector, 1, StepMode::kFused)(nullptr);
  for (int i = 0; i < 30; ++i) world.driver->step();

  TempDir dir;
  const std::filesystem::path target = dir.path() / "latest.snap";
  {
    snapshot::Snapshotter snapshotter(
        snapshot::file_sink(target.string()));
    snapshotter.request(*world.driver);
    for (int i = 0; i < 10; ++i) world.driver->step();
    snapshotter.request(*world.driver);  // second write replaces the first
    snapshotter.flush();
    EXPECT_EQ(snapshotter.completed(), 2u);
  }
  ASSERT_TRUE(std::filesystem::exists(target));
  EXPECT_FALSE(std::filesystem::exists(target.string() + ".tmp"))
      << "the staging file must not outlive a successful rename";

  std::ifstream in(target, std::ios::binary);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  const snapshot::SnapshotImage image = snapshot::parse(bytes);
  EXPECT_EQ(image.system.epoch, 40u) << "the file must hold the LAST snapshot";
  EXPECT_TRUE(image.has_driver);
}

TEST(Supervisor, FileSinkFailuresSurfaceAsTypedIoErrors) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  const SupervisedWorld world =
      scenario_factory(detector, 1, StepMode::kFused)(nullptr);
  for (int i = 0; i < 10; ++i) world.driver->step();

  // Unwritable target directory: open() fails on the worker thread; the
  // error must surface on the producer thread as SerialError(kIo), and the
  // Snapshotter must stay usable afterwards.
  {
    snapshot::Snapshotter snapshotter(snapshot::file_sink(
        "/nonexistent_valkyrie_dir/deeper/latest.snap"));
    snapshotter.request(*world.driver);
    try {
      snapshotter.flush();
      FAIL() << "flush() must rethrow the worker-side sink failure";
    } catch (const SerialError& e) {
      EXPECT_EQ(e.code(), SerialError::Code::kIo);
    }
    snapshotter.flush();  // error consumed: a clean flush is quiet
  }

  // Rename-step failure: the target exists as a DIRECTORY. The temp file
  // writes fine, the rename cannot land, and the staging file is cleaned
  // up — `path` never names a torn file.
  {
    TempDir dir;
    const std::filesystem::path target = dir.path() / "occupied";
    std::filesystem::create_directory(target);
    snapshot::Snapshotter snapshotter(
        snapshot::file_sink(target.string()));
    snapshotter.request(*world.driver);
    try {
      snapshotter.flush();
      FAIL() << "rename onto a directory must fail loudly";
    } catch (const SerialError& e) {
      EXPECT_EQ(e.code(), SerialError::Code::kIo);
    }
    EXPECT_FALSE(std::filesystem::exists(target.string() + ".tmp"));
    EXPECT_TRUE(std::filesystem::is_directory(target));
  }
}

}  // namespace
}  // namespace valkyrie::core
