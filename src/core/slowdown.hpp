// Slowdown quantification (paper §V-C, Eqs. 2-4) and the closed-form
// worked example: N* = 15 epochs, incremental penalty/compensation, a CPU
// actuator that drops the share 10% per unit of threat increase (1% floor).
// Always-malicious inferences give ~79.6% attack slowdown; false positives
// for the first 5 epochs give ~26% benign slowdown.
#pragma once

#include <span>
#include <vector>

#include "core/threat.hpp"
#include "ml/detector.hpp"

namespace valkyrie::core {

/// Eq. 4 computed from measured per-epoch progress of two runs of the same
/// workload: S(t) = (1 - progress_with / progress_without) * 100, in %.
/// 0% = unaffected; 100% = progress fully halted.
[[nodiscard]] double effective_slowdown_pct(
    std::span<const double> progress_without,
    std::span<const double> progress_with) noexcept;

/// The two actuator conventions a "10% CPU drop per threat increase" can
/// mean; the paper's numbers sit between them (see DESIGN.md §4/E16).
enum class WorkedActuator {
  /// share -= 0.1 * dT (percentage points), floor 1%.
  kPercentagePoint,
  /// share *= (1 - 0.1 * dT) (Eq. 8 with gamma=0.1), floor 1%.
  kMultiplicative,
};

struct WorkedExampleConfig {
  std::size_t required_measurements = 15;  // K = N* epochs
  WorkedActuator actuator = WorkedActuator::kPercentagePoint;
  double step = 0.10;
  double floor = 0.01;
  ThreatConfig threat{};  // incremental Fp/Fc by default
};

/// Analytically replays Algorithm 1 over a given inference schedule with
/// progress proportional to the CPU share (B_i(R_i) = share_i), returning
/// the effective slowdown in percent per Eq. 4. Epoch 0 runs at the default
/// share; the inference of epoch i throttles epoch i+1 (Eq. 3 timing).
[[nodiscard]] double worked_example_slowdown_pct(
    std::span<const ml::Inference> inferences, const WorkedExampleConfig& config);

/// Convenience schedules for the paper's two §V-C scenarios.
[[nodiscard]] std::vector<ml::Inference> always_malicious_schedule(
    std::size_t epochs);
/// `fp_epochs` false positives followed by benign-classified epochs.
[[nodiscard]] std::vector<ml::Inference> fp_burst_schedule(
    std::size_t fp_epochs, std::size_t total_epochs);

/// Per-epoch CPU shares the worked example produces (for tests/benches
/// that want the full trajectory, e.g. to print the figure row by row).
[[nodiscard]] std::vector<double> worked_example_shares(
    std::span<const ml::Inference> inferences, const WorkedExampleConfig& config);

}  // namespace valkyrie::core
