// DRAM disturbance (rowhammer) model.
//
// Bits in a DRAM row flip when its physically adjacent rows are activated
// many times within one refresh interval (Kim et al., ISCA 2014). The model
// tracks per-row activation counts inside the current refresh window; once
// the accumulated activations of a victim row's neighbours exceed the
// disturbance threshold, each further aggressor activation flips a bit in
// the victim with a small probability.
//
// The key *response-relevant* property this reproduces: hammering is a rate
// threshold. Throttle the attacking process's CPU share so that fewer than
// `disturbance_threshold` adjacent activations land within any 64 ms window
// and the flip count is exactly zero — which is how Valkyrie achieves a 100%
// slowdown in Fig. 6a rather than a proportional one.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace valkyrie::util {
class ByteWriter;
class ByteReader;
}  // namespace valkyrie::util

namespace valkyrie::dram {

struct DramConfig {
  std::uint32_t banks = 8;
  std::uint32_t rows_per_bank = 32768;
  /// Row-cycle time: every activation advances model time by this much.
  double t_rc_ns = 50.0;
  /// All rows are refreshed (counters cleared) once per interval.
  double refresh_interval_ms = 64.0;
  /// Adjacent-activation count inside one window before flips can occur
  /// (HC_first; ~139K on DDR3 per Kim et al.).
  std::uint64_t disturbance_threshold = 139'000;
  /// Per-activation flip probability once past the threshold. Calibrated so
  /// that an unthrottled double-sided hammer flips ~1 bit per 29 iterations
  /// of a 10K-activation hammer loop (paper §VI-B, Transcend DDR3 chip).
  double flip_prob_per_excess = 2.2e-6;
};

struct FlipRecord {
  std::uint32_t bank;
  std::uint32_t row;
  std::uint64_t window;  // refresh-window ordinal when the flip happened
};

class Dram {
 public:
  explicit Dram(const DramConfig& config, std::uint64_t seed = 0xd7a3);

  /// Activates (opens) a row: advances time by tRC, accumulates disturbance
  /// on the two physically adjacent rows and possibly flips bits in them.
  void activate(std::uint32_t bank, std::uint32_t row);

  /// Advances model time without activity (e.g. the attacker is descheduled).
  /// Refresh windows elapse as usual, clearing disturbance counters.
  void idle_ns(double ns) noexcept;

  [[nodiscard]] std::uint64_t total_bit_flips() const noexcept {
    return flips_.size();
  }
  [[nodiscard]] const std::vector<FlipRecord>& flips() const noexcept {
    return flips_;
  }
  [[nodiscard]] std::uint64_t total_activations() const noexcept {
    return activations_;
  }
  [[nodiscard]] double now_ms() const noexcept { return now_ns_ / 1e6; }
  [[nodiscard]] std::uint64_t refresh_windows_elapsed() const noexcept {
    return window_;
  }
  [[nodiscard]] const DramConfig& config() const noexcept { return config_; }

  /// Serializes the mutable model state (RNG, clock, per-window disturbance
  /// counters — sparsely, the table is banks x rows — and the flip log);
  /// the config is the owner's to persist. snapshot_restore overwrites the
  /// state of a Dram constructed with the same config.
  void snapshot_save(util::ByteWriter& out) const;
  void snapshot_restore(util::ByteReader& in);

 private:
  void advance(double ns) noexcept;
  void disturb(std::uint32_t bank, std::uint32_t row);

  DramConfig config_;
  util::Rng rng_;
  double now_ns_ = 0.0;
  std::uint64_t window_ = 0;
  std::uint64_t activations_ = 0;
  // Disturbance accumulated per row in the *current* window, bank-major.
  std::vector<std::uint64_t> disturbance_;
  std::vector<FlipRecord> flips_;
};

}  // namespace valkyrie::dram
