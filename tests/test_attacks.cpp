#include <gtest/gtest.h>

#include "attacks/covert_channels.hpp"
#include "attacks/cryptominer.hpp"
#include "attacks/exfiltrator.hpp"
#include "attacks/l1i_rsa.hpp"
#include "attacks/pp_aes.hpp"
#include "attacks/ransomware.hpp"
#include "attacks/rowhammer.hpp"
#include "attacks/tsa_covert.hpp"

namespace valkyrie::attacks {
namespace {

/// Runs a workload for `epochs` with a fixed CPU share; other shares 1.0.
double run_attack(sim::Workload& w, int epochs, double cpu_share,
                  std::uint64_t seed = 1) {
  util::Rng rng(seed);
  sim::EpochContext ctx;
  ctx.rng = &rng;
  sim::ResourceShares shares;
  shares.cpu = cpu_share;
  for (int e = 0; e < epochs; ++e) {
    ctx.epoch = static_cast<std::uint64_t>(e);
    w.run_epoch(shares, ctx);
  }
  return w.total_progress();
}

// --- Exfiltrator (Table II) --------------------------------------------------

TEST(Exfiltrator, DefaultRateMatchesTableII) {
  ExfiltratorAttack attack;
  const double bytes = run_attack(attack, 10, 1.0);
  // Paper default: 225.7 KB/s -> 22.57 KB per 100 ms epoch.
  EXPECT_NEAR(bytes / 10.0, 22570.0, 2500.0);
  EXPECT_GT(attack.files_processed(), 0u);
  EXPECT_GT(attack.hashes_computed(), 0u);
}

TEST(Exfiltrator, CpuThrottlingProportional) {
  ExfiltratorAttack full;
  ExfiltratorAttack half;
  const double bytes_full = run_attack(full, 10, 1.0);
  const double bytes_half = run_attack(half, 10, 0.5);
  const double slowdown = 1.0 - bytes_half / bytes_full;
  // Table II: 50% CPU -> 45.2% slowdown. Our model gives ~51%.
  EXPECT_GT(slowdown, 0.35);
  EXPECT_LT(slowdown, 0.6);
}

TEST(Exfiltrator, ExtremeCpuThrottleNearlyStops) {
  ExfiltratorAttack full;
  ExfiltratorAttack starved;
  const double bytes_full = run_attack(full, 10, 1.0);
  const double bytes_starved = run_attack(starved, 10, 0.01);
  EXPECT_GT(1.0 - bytes_starved / bytes_full, 0.99);  // Table II: 99.7%
}

TEST(Exfiltrator, FsThrottlingProportional) {
  ExfiltratorAttack full;
  ExfiltratorAttack slowfs;
  util::Rng rng(2);
  sim::EpochContext ctx;
  ctx.rng = &rng;
  sim::ResourceShares shares;
  for (int e = 0; e < 10; ++e) full.run_epoch(shares, ctx);
  shares.fs = 0.5;
  for (int e = 0; e < 10; ++e) slowfs.run_epoch(shares, ctx);
  const double slowdown = 1.0 - slowfs.total_progress() / full.total_progress();
  EXPECT_NEAR(slowdown, 0.5, 0.08);  // Table II: 49.6% at 50 files/s
}

TEST(Exfiltrator, MemoryThrottlingSharp) {
  ExfiltratorAttack full;
  ExfiltratorAttack squeezed;
  util::Rng rng(3);
  sim::EpochContext ctx;
  ctx.rng = &rng;
  sim::ResourceShares shares;
  for (int e = 0; e < 5; ++e) full.run_epoch(shares, ctx);
  shares.mem = 0.936;
  for (int e = 0; e < 5; ++e) squeezed.run_epoch(shares, ctx);
  // Table II: 99.96% slowdown at 93.6% residency.
  EXPECT_GT(1.0 - squeezed.total_progress() / full.total_progress(), 0.999);
}

TEST(Exfiltrator, NetworkThrottlingMatchesPolicingShape) {
  ExfiltratorAttack full;
  ExfiltratorAttack capped;
  util::Rng rng(4);
  sim::EpochContext ctx;
  ctx.rng = &rng;
  sim::ResourceShares shares;
  for (int e = 0; e < 5; ++e) full.run_epoch(shares, ctx);
  shares.net = 1e-3;
  for (int e = 0; e < 5; ++e) capped.run_epoch(shares, ctx);
  // Table II: 74.9% slowdown at a 1e-3 bandwidth cap.
  EXPECT_NEAR(1.0 - capped.total_progress() / full.total_progress(), 0.749,
              0.05);
}

// --- Prime+Probe AES (Fig. 4a) ----------------------------------------------

TEST(PrimeProbeAes, StartsAtMaximumEntropy) {
  PrimeProbeAesAttack attack;
  EXPECT_NEAR(attack.guessing_entropy(), 128.0, 1.0);
}

TEST(PrimeProbeAes, UnthrottledRecoversKeyNibble) {
  PrimeProbeAesAttack attack;
  run_attack(attack, 50, 1.0);
  // Fig. 4a: GE drops from 128 towards ~10 as the attack progresses.
  EXPECT_LT(attack.guessing_entropy(), 40.0);
  EXPECT_GT(attack.measurements(), 1400u);
}

TEST(PrimeProbeAes, ThrottledStaysUninformed) {
  // Fig. 4a with Valkyrie: a throttled spy's probes aggregate dozens of
  // encryptions each, so its candidate ranking is uninformed — the rank of
  // the true key is uniform (expected GE ~128, the paper reports 131),
  // where the unthrottled attack drives GE to ~8. Individual seeds
  // random-walk, so the assertion is statistical: mean GE across seeds
  // stays far above the broken-key regime and far above the unthrottled
  // attack on the same seeds.
  double throttled_total = 0.0;
  double unthrottled_total = 0.0;
  constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6};
  for (const std::uint64_t seed : kSeeds) {
    PrimeProbeAesAttack throttled;
    run_attack(throttled, 50, 0.03, seed);
    throttled_total += throttled.guessing_entropy();
    PrimeProbeAesAttack unthrottled;
    run_attack(unthrottled, 50, 1.0, seed);
    unthrottled_total += unthrottled.guessing_entropy();
  }
  const double throttled_mean = throttled_total / std::size(kSeeds);
  const double unthrottled_mean = unthrottled_total / std::size(kSeeds);
  EXPECT_GT(throttled_mean, 50.0);
  EXPECT_GT(throttled_mean, 3.0 * unthrottled_mean);
}

TEST(PrimeProbeAes, ProgressCountsMeasurements) {
  PrimeProbeAesAttack attack;
  run_attack(attack, 5, 1.0);
  EXPECT_DOUBLE_EQ(attack.total_progress(),
                   static_cast<double>(attack.measurements()));
  EXPECT_EQ(attack.progress_units(), "measurements");
  EXPECT_TRUE(attack.is_attack());
}

// --- L1I RSA (Fig. 4b) --------------------------------------------------------

TEST(L1iRsa, UnthrottledRecoversExponent) {
  L1iRsaAttack attack;
  run_attack(attack, 10, 1.0);
  EXPECT_LT(attack.bit_error_rate(), 0.05);
}

TEST(L1iRsa, ThrottledErrorRateNearHalf) {
  L1iRsaAttack attack;
  run_attack(attack, 10, 0.05);
  // Fig. 4b: error rate >= 50% — on par with random guessing.
  EXPECT_GE(attack.bit_error_rate(), 0.45);
}

TEST(L1iRsa, BaselineErrorIsHalf) {
  L1iRsaAttack attack;
  EXPECT_DOUBLE_EQ(attack.bit_error_rate(), 0.5);
}

// --- TSA covert channel (Fig. 4c) ---------------------------------------------

TEST(TsaCovert, SynchronizedChannelIsClean) {
  TsaCovertChannel channel;
  run_attack(channel, 10, 1.0);
  EXPECT_LT(channel.bit_error_rate(), 0.05);
  EXPECT_GT(channel.total_progress(), 10000.0);
}

TEST(TsaCovert, ThrottledChannelExceedsHalfError) {
  TsaCovertChannel channel;
  run_attack(channel, 10, 0.1);
  // Fig. 4c: error rate rises above 50%.
  EXPECT_GT(channel.bit_error_rate(), 0.5);
}

// --- Contention covert channels (Figs. 4d-f) -----------------------------------

TEST(CovertChannels, LlcTransmitsWhenUnthrottled) {
  ContentionCovertChannel channel(llc_covert_config());
  run_attack(channel, 10, 1.0);
  EXPECT_TRUE(channel.initialized());
  EXPECT_GT(channel.bits_received_correctly(), 1000u);
  EXPECT_LT(channel.bit_error_rate(), 0.1);
}

TEST(CovertChannels, ThrottledLlcTransmitsAlmostNothing) {
  ContentionCovertChannel full(llc_covert_config());
  ContentionCovertChannel throttled(llc_covert_config());
  run_attack(full, 10, 1.0);
  run_attack(throttled, 10, 0.05);
  EXPECT_LT(static_cast<double>(throttled.bits_received_correctly()),
            0.05 * static_cast<double>(full.bits_received_correctly()));
}

TEST(CovertChannels, TlbChannelWorks) {
  ContentionCovertChannel channel(tlb_covert_config());
  run_attack(channel, 10, 1.0);
  EXPECT_TRUE(channel.initialized());
  EXPECT_GT(channel.bits_received_correctly(), 500u);
}

TEST(CovertChannels, CjagInitCostGrowsWithChannels) {
  // Fig. 4d: more channels -> longer initialisation. Run both for a few
  // epochs and compare when they start transmitting.
  ContentionCovertChannel one(cjag_config(1));
  ContentionCovertChannel eight(cjag_config(8));
  int epochs_to_init_one = 0;
  int epochs_to_init_eight = 0;
  util::Rng rng1(5);
  util::Rng rng8(5);
  sim::EpochContext ctx1;
  ctx1.rng = &rng1;
  sim::EpochContext ctx8;
  ctx8.rng = &rng8;
  const sim::ResourceShares shares;
  for (int e = 0; e < 50; ++e) {
    if (!one.initialized()) {
      one.run_epoch(shares, ctx1);
      epochs_to_init_one = e + 1;
    }
    if (!eight.initialized()) {
      eight.run_epoch(shares, ctx8);
      epochs_to_init_eight = e + 1;
    }
  }
  EXPECT_TRUE(one.initialized());
  EXPECT_TRUE(eight.initialized());
  EXPECT_GT(epochs_to_init_eight, epochs_to_init_one);
}

TEST(CovertChannels, CjagThrottledDuringInitNeverTransmits) {
  ContentionCovertChannel channel(cjag_config(4));
  run_attack(channel, 20, 0.05);
  // Throttled before the jamming agreement completes: zero bits ever land.
  EXPECT_EQ(channel.bits_received_correctly(), 0u);
}

// --- Rowhammer (Fig. 6a) -------------------------------------------------------

TEST(Rowhammer, UnthrottledFlipsBits) {
  RowhammerAttack attack;
  run_attack(attack, 15, 1.0);
  EXPECT_GT(attack.dram().total_bit_flips(), 0u);
  EXPECT_GT(attack.hammer_iterations(), 0u);
}

TEST(Rowhammer, ThrottledBelowHammeringRateZeroFlips) {
  RowhammerAttack attack;
  run_attack(attack, 15, 0.05);
  // Fig. 6a: a throttled hammer never crosses the per-window disturbance
  // threshold -> zero flips -> 100% slowdown.
  EXPECT_EQ(attack.dram().total_bit_flips(), 0u);
  EXPECT_GT(attack.hammer_iterations(), 0u);  // it does run, futilely
}

TEST(Rowhammer, FlipsLandAdjacentToVictimRow) {
  RowhammerConfig cfg;
  RowhammerAttack attack(cfg);
  run_attack(attack, 15, 1.0);
  for (const dram::FlipRecord& flip : attack.dram().flips()) {
    EXPECT_GE(flip.row, cfg.victim_row - 2);
    EXPECT_LE(flip.row, cfg.victim_row + 2);
  }
}

// --- Ransomware (Fig. 6b) -------------------------------------------------------

TEST(Ransomware, DefaultEncryptionRateMatchesPaper) {
  RansomwareAttack attack;
  const double bytes = run_attack(attack, 10, 1.0);
  // 11.67 MB/s -> 1.167 MB per epoch.
  EXPECT_NEAR(bytes / 10.0, 1.167e6, 0.12e6);
}

TEST(Ransomware, CpuThrottleTo1PercentNearlyStops) {
  RansomwareAttack attack;
  const double bytes = run_attack(attack, 10, 0.01);
  // Paper: ~152 KB/s under the CPU actuator's floor; our CPU model gives
  // the same order (sub-proportional at tiny shares).
  const double rate_per_s = bytes / 1.0;  // 10 epochs = 1 s
  EXPECT_LT(rate_per_s, 300e3);
  EXPECT_GT(rate_per_s, 3e3);
}

TEST(Ransomware, FsThrottleCutsRateProportionally) {
  RansomwareAttack full;
  RansomwareAttack starved;
  util::Rng rng(6);
  sim::EpochContext ctx;
  ctx.rng = &rng;
  sim::ResourceShares shares;
  for (int e = 0; e < 10; ++e) full.run_epoch(shares, ctx);
  shares.fs = 1.0 / 7.0;  // 7 files/epoch -> 1 file/epoch
  for (int e = 0; e < 10; ++e) starved.run_epoch(shares, ctx);
  // Paper: 11.67 MB/s -> ~1.5 MB/s.
  EXPECT_NEAR(starved.total_progress() / full.total_progress(), 1.0 / 7.0,
              0.04);
}

TEST(Ransomware, CorpusHas67DistinctSamples) {
  const std::vector<RansomwareConfig> corpus = ransomware_corpus();
  EXPECT_EQ(corpus.size(), 67u);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_NE(corpus[i].name, corpus[j].name);
    }
  }
}

// --- Cryptominer (Fig. 6c) ------------------------------------------------------

TEST(Cryptominer, HashRateScalesWithCpu) {
  CryptominerAttack full;
  CryptominerAttack throttled;
  const double h_full = run_attack(full, 10, 1.0);
  const double h_thr = run_attack(throttled, 10, 0.01);
  // Paper: 99.04% average slowdown in the suspicious state.
  EXPECT_GT(1.0 - h_thr / h_full, 0.99);
}

TEST(Cryptominer, FindsSharesAtLowDifficulty) {
  CryptominerConfig cfg;
  cfg.difficulty_bits = 8;  // 1 in 256 hashes
  cfg.real_hashes_per_epoch = 2048;
  CryptominerAttack attack(cfg);
  run_attack(attack, 5, 1.0);
  EXPECT_GT(attack.shares_found(), 0u);
}

TEST(Cryptominer, CorpusVariantsDistinct) {
  const std::vector<CryptominerConfig> corpus = cryptominer_corpus();
  EXPECT_EQ(corpus.size(), 20u);
  EXPECT_NE(corpus[0].hashes_per_second, corpus[1].hashes_per_second);
}

}  // namespace
}  // namespace valkyrie::attacks
