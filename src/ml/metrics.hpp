// Binary-classification metrics used to express detection efficacy
// (paper Fig. 1: F1-score and false-positive rate vs. measurement count).
#pragma once

#include <cstdint>

namespace valkyrie::ml {

/// Confusion-matrix counts for the attack-detection task. "Positive" means
/// classified malicious.
struct ConfusionMatrix {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_negatives = 0;
  std::uint64_t false_negatives = 0;

  void record(bool actual_malicious, bool predicted_malicious) noexcept {
    if (actual_malicious) {
      predicted_malicious ? ++true_positives : ++false_negatives;
    } else {
      predicted_malicious ? ++false_positives : ++true_negatives;
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return true_positives + false_positives + true_negatives + false_negatives;
  }

  /// TP / (TP + FP); 0 when undefined.
  [[nodiscard]] double precision() const noexcept;
  /// TP / (TP + FN); 0 when undefined.
  [[nodiscard]] double recall() const noexcept;
  /// Harmonic mean of precision and recall; 0 when undefined.
  [[nodiscard]] double f1() const noexcept;
  /// FP / (FP + TN); 0 when undefined.
  [[nodiscard]] double false_positive_rate() const noexcept;
  [[nodiscard]] double accuracy() const noexcept;

  ConfusionMatrix& operator+=(const ConfusionMatrix& other) noexcept;
};

}  // namespace valkyrie::ml
