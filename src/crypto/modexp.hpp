// Left-to-right square-and-multiply modular exponentiation — the classic
// instruction-cache side-channel victim (Aciicmez et al., CHES 2010). For
// each exponent bit the routine always squares, and additionally multiplies
// when the bit is 1. A spy probing the I-cache lines holding the multiply
// routine can therefore read the secret exponent bit-by-bit.
//
// The arithmetic is 64-bit (via 128-bit intermediate products): the
// side-channel experiments only need the *control-flow* structure of RSA,
// not 2048-bit numbers.
#pragma once

#include <cstdint>
#include <vector>

namespace valkyrie::crypto {

/// Which routine a square-and-multiply step executed; the victim's
/// instruction-fetch trace is a sequence of these.
enum class ModExpOp : std::uint8_t { kSquare, kMultiply };

/// (a * b) mod m without overflow.
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t m) noexcept;

/// base^exponent mod m by left-to-right square-and-multiply. If `trace` is
/// non-null, appends the executed operation sequence (one kSquare per bit
/// after the leading one, plus one kMultiply per set bit).
[[nodiscard]] std::uint64_t modexp(std::uint64_t base,
                                   std::uint64_t exponent, std::uint64_t m,
                                   std::vector<ModExpOp>* trace = nullptr) noexcept;

/// Same control flow over an arbitrary-length exponent given as bits
/// (most-significant first). Returns the modular result of raising `base`.
[[nodiscard]] std::uint64_t modexp_bits(std::uint64_t base,
                                        const std::vector<bool>& exponent_bits,
                                        std::uint64_t m,
                                        std::vector<ModExpOp>* trace = nullptr) noexcept;

}  // namespace valkyrie::crypto
