#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes128.hpp"
#include "crypto/modexp.hpp"
#include "crypto/sha256.hpp"

namespace valkyrie::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Sha256, EmptyStringKat) {
  const auto digest = Sha256::hash({});
  EXPECT_EQ(to_hex(digest),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcKat) {
  const auto data = bytes_of("abc");
  EXPECT_EQ(to_hex(Sha256::hash({data.data(), data.size()})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockKat) {
  const auto data =
      bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(to_hex(Sha256::hash({data.data(), data.size()})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAKat) {
  Sha256 ctx;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update({chunk.data(), chunk.size()});
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog!!");
  Sha256 ctx;
  ctx.update({data.data(), 10});
  ctx.update({data.data() + 10, data.size() - 10});
  EXPECT_EQ(to_hex(ctx.finish()),
            to_hex(Sha256::hash({data.data(), data.size()})));
}

TEST(Sha256, FinishResetsForReuse) {
  const auto a = bytes_of("abc");
  Sha256 ctx;
  ctx.update({a.data(), a.size()});
  (void)ctx.finish();
  ctx.update({a.data(), a.size()});
  EXPECT_EQ(to_hex(ctx.finish()),
            to_hex(Sha256::hash({a.data(), a.size()})));
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  const auto data = bytes_of("pow");
  EXPECT_NE(to_hex(Sha256::hash({data.data(), data.size()})),
            to_hex(Sha256::hash2({data.data(), data.size()})));
}

TEST(Sha256, LeadingZeroBits) {
  Sha256Digest d{};
  d.fill(0);
  EXPECT_EQ(leading_zero_bits(d), 256);
  d[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(d), 0);
  d[0] = 0x01;
  EXPECT_EQ(leading_zero_bits(d), 7);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(leading_zero_bits(d), 11);
}

// FIPS-197 Appendix B example vector.
TEST(Aes128, Fips197Kat) {
  const AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const AesBlock pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const AesBlock expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                             0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  EXPECT_EQ(aes.encrypt_block(pt), expected);
}

TEST(Aes128, KeyScheduleFirstAndLastRoundKeys) {
  // FIPS-197 A.1 expansion of the same key.
  const AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  Aes128 aes(key);
  EXPECT_EQ(aes.round_keys()[0][0], 0x2b7e1516u);
  EXPECT_EQ(aes.round_keys()[10][3], 0xb6630ca6u);
}

TEST(Aes128, TraceHas160TableAccesses) {
  Aes128 aes(AesKey{});
  std::vector<TableAccess> trace;
  (void)aes.encrypt_block(AesBlock{}, &trace);
  // 9 T-table rounds * 16 lookups + 16 final-round lookups.
  EXPECT_EQ(trace.size(), 160u);
}

TEST(Aes128, FirstRoundAccessesLeakPlaintextXorKey) {
  const AesKey key = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88,
                      0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00};
  AesBlock pt{};
  for (std::size_t i = 0; i < pt.size(); ++i) {
    pt[i] = static_cast<std::uint8_t>(0xc0 + i);
  }
  Aes128 aes(key);
  std::vector<TableAccess> trace;
  (void)aes.encrypt_block(pt, &trace);
  // The very first lookup is Te0[pt[0] ^ key[0]] — the OST attack's handle.
  EXPECT_EQ(trace[0].table, 0);
  EXPECT_EQ(trace[0].index, static_cast<std::uint8_t>(pt[0] ^ key[0]));
  // Column 0's round-1 lookups cover bytes 0, 5, 10, 15 of pt^key.
  EXPECT_EQ(trace[1].index, static_cast<std::uint8_t>(pt[5] ^ key[5]));
  EXPECT_EQ(trace[2].index, static_cast<std::uint8_t>(pt[10] ^ key[10]));
  EXPECT_EQ(trace[3].index, static_cast<std::uint8_t>(pt[15] ^ key[15]));
}

TEST(Aes128, CtrRoundTrips) {
  const AesKey key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  Aes128 aes(key);
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const std::vector<std::uint8_t> original = data;
  aes.ctr_crypt({data.data(), data.size()}, /*nonce=*/42);
  EXPECT_NE(data, original);
  aes.ctr_crypt({data.data(), data.size()}, /*nonce=*/42);
  EXPECT_EQ(data, original);
}

TEST(Aes128, CtrDifferentNoncesDiffer) {
  Aes128 aes(AesKey{});
  std::vector<std::uint8_t> a(64, 0);
  std::vector<std::uint8_t> b(64, 0);
  aes.ctr_crypt({a.data(), a.size()}, 1);
  aes.ctr_crypt({b.data(), b.size()}, 2);
  EXPECT_NE(a, b);
}

TEST(Modexp, MatchesReference) {
  EXPECT_EQ(modexp(2, 10, 1000), 24u);
  EXPECT_EQ(modexp(3, 0, 7), 1u);
  EXPECT_EQ(modexp(10, 5, 1), 0u);
  EXPECT_EQ(modexp(7, 13, 11), 2u);  // 7^13 mod 11
}

TEST(Modexp, MulmodNoOverflow) {
  const std::uint64_t big = 0xfffffffffffffffULL;
  EXPECT_EQ(mulmod(big, big, 1000000007ULL),
            static_cast<std::uint64_t>(
                (static_cast<__uint128_t>(big) * big) % 1000000007ULL));
}

TEST(Modexp, TraceStructureMatchesBits) {
  // Exponent 0b1011: squares = 4 (one per bit), multiplies = 3 (set bits).
  std::vector<ModExpOp> trace;
  (void)modexp(5, 0b1011, 97, &trace);
  int squares = 0;
  int multiplies = 0;
  for (const ModExpOp op : trace) {
    (op == ModExpOp::kSquare ? squares : multiplies) += 1;
  }
  EXPECT_EQ(squares, 4);
  EXPECT_EQ(multiplies, 3);
  // Each multiply directly follows a square.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] == ModExpOp::kMultiply) {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(trace[i - 1], ModExpOp::kSquare);
    }
  }
}

TEST(Modexp, BitsVariantAgreesWithWordVariant) {
  const std::vector<bool> bits = {true, false, true, true};  // 0b1011 = 11
  EXPECT_EQ(modexp_bits(5, bits, 97), modexp(5, 11, 97));
}

// Parameterised KAT sweep for CTR at odd buffer sizes (partial last block).
class CtrSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CtrSizes, RoundTripAtAnyLength) {
  Aes128 aes(AesKey{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6});
  std::vector<std::uint8_t> data(GetParam(), 0x5c);
  const auto original = data;
  aes.ctr_crypt({data.data(), data.size()}, 77);
  aes.ctr_crypt({data.data(), data.size()}, 77);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CtrSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 33, 100));

}  // namespace
}  // namespace valkyrie::crypto
