// Engine-epoch scaling harness. Three experiments, all written into one
// JSON file so CI can track the perf trajectory across PRs:
//
//   1. Window growth: ValkyrieEngine::step() cost as the accumulated
//      measurement window grows (target: ns/epoch flat in window length,
//      i.e. O(1) per-epoch inference — the PR 1 contract).
//   2. Shard sweep: ns/epoch across a process-count x worker-thread x
//      step-schedule grid (8..4096 processes, 1..8 threads; fused vs.
//      split vs. batched dispatch), measuring the sharded step's speedup
//      over the sequential path (PR 2), the fused single-dispatch
//      schedule's gain over the split schedule (PR 3), and the cross-slot
//      batched-inference schedule's gain over fused (PR 4, reported as
//      batch_speedup on the batched rows). Every variant is bit-identical
//      to the sequential engine, so this is pure throughput. Each row also
//      records the schedule executions per epoch — pool dispatches PLUS
//      inline runs, so single-shard rows report the true schedule (fused/
//      batched: 1, split: 2) instead of the 0.0 the dispatch counter alone
//      used to under-report — plus an `inline` flag for single-shard rows.
//   3. Batch kernels: scalar-vs-batch per-item cost of the shipped
//      detector kernels (MLP window inference, SVM/GBT/stat measurement
//      votes) over a feature plane at batch sizes 16/256/4096, recording
//      the speedup the cross-slot batching buys per detector family.
//   4. Churn: ScenarioDriver-fed open-population runs — Poisson arrivals,
//      geometric lifetimes, kill/completion departures — at 1024-4096
//      steady-state live processes, sweeping the arrival/exit rate.
//      Records ns/proc/epoch (the epoch-open lifecycle must not tax the
//      closed-population hot path) plus admissions/exits per epoch.
//   5. Snapshot: the operational-recovery cost model at 1024/4096 live
//      processes — capture latency (synchronous on the engine thread),
//      off-thread encode latency, artifact bytes, and parse+restore
//      latency into a fresh engine.
//   6. Sim breakdown + sim-floor A/B (PR 9): per-component timing of one
//      simulated epoch (workload/HPC draw per RNG kind, feature extract,
//      history append vector-vs-ring, window fold scalar-vs-plane, batch
//      inference, serial commit, full-step reference), then single-thread
//      ns/proc/epoch for baseline vs the bit-exact perf configuration
//      (plane-major fold + counter RNG + bounded ring) vs perf + the fast
//      inference tier — with the fast tier's detection-efficacy deltas
//      measured fig. 1 style (accuracy vs window length, both tiers).
//   7. Faults: what graceful degradation costs (PR 7). Closed-population
//      rows measure the hardened step against the fault-free baseline —
//      an armed-but-idle plane (the overhead contract: ~0), then 1% and
//      10% sensor-fault rates (quarantine + coast/blind accounting). A
//      faulted churn row runs the full chaos configuration (all three
//      fault planes) through the open-population driver — this row also
//      runs under --smoke, as CI's chaos smoke point. A recovery row
//      times one SupervisedEngine crash-restore-replay cycle end to end.
//
//   ./engine_scaling [out.json] [max_threads] [--smoke]
//
// --smoke shrinks every experiment to a seconds-scale CI sanity run. The
// emitted JSON is always validated for well-formedness before the process
// exits 0.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/responses.hpp"
#include "core/supervisor.hpp"
#include "core/valkyrie.hpp"
#include "engine_bench_common.hpp"
#include "fault/fault_plane.hpp"
#include "hpc/hpc.hpp"
#include "ml/gbt.hpp"
#include "ml/plane_fold.hpp"
#include "ml/stat_detector.hpp"
#include "ml/svm.hpp"
#include "ml/window_accumulator.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "util/pid_map.hpp"
#include "util/rng.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace valkyrie;
using Clock = std::chrono::steady_clock;
using StepMode = core::ValkyrieEngine::StepMode;

const char* mode_name(StepMode mode) {
  switch (mode) {
    case StepMode::kFused:
      return "fused";
    case StepMode::kSplit:
      return "split";
    case StepMode::kBatched:
      return "batched";
  }
  return "unknown";
}

struct Point {
  std::uint64_t epoch;
  double ns_per_epoch;
};

std::vector<Point> run_series(const ml::Detector& detector,
                              std::size_t processes,
                              std::uint64_t max_epoch) {
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector);
  for (std::size_t p = 0; p < processes; ++p) {
    const sim::ProcessId pid = sys.spawn(std::make_unique<bench::SignatureWorkload>(
        bench::engine_bench_benign_signature()));
    engine.attach(pid, core::ValkyrieConfig{},
                  std::make_unique<core::SchedulerWeightActuator>());
  }
  sys.reserve_history(max_epoch + 1);

  constexpr std::uint64_t kProbe = 10;  // epochs timed per checkpoint
  std::vector<Point> points;
  std::uint64_t epoch = 0;
  for (std::uint64_t target = 50; target <= max_epoch; target *= 10) {
    while (epoch + kProbe < target) {
      engine.step();
      ++epoch;
    }
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < kProbe; ++i) engine.step();
    const auto stop = Clock::now();
    epoch += kProbe;
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(kProbe);
    points.push_back({epoch, ns});
  }
  return points;
}

struct SweepPoint {
  std::size_t processes;
  std::size_t threads;         // requested
  std::size_t effective_shards;  // after the engine's hardware clamp
  StepMode mode;
  double ns_per_epoch;
  double ns_per_proc_epoch;
  double dispatches_per_epoch;  // schedule executions (incl. inline runs)
};

SweepPoint run_sweep_point(const ml::Detector& detector, std::size_t processes,
                           std::size_t threads, StepMode mode) {
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector, threads, mode);
  for (std::size_t p = 0; p < processes; ++p) {
    const sim::ProcessId pid = sys.spawn(std::make_unique<bench::SignatureWorkload>(
        bench::engine_bench_benign_signature()));
    engine.attach(pid, core::ValkyrieConfig{},
                  std::make_unique<core::SchedulerWeightActuator>());
  }

  const std::uint64_t warmup = 20;
  const std::uint64_t probe = std::clamp<std::uint64_t>(
      40960 / static_cast<std::uint64_t>(processes), 10, 2000);
  // Best-of-R probes: the sweep runs on shared machines, and a single
  // averaged probe inherits whatever the neighbours were doing. The minimum
  // over repeats is the stable statistic for a deterministic workload; five
  // repeats ride over the multi-second throttling windows CPU-share-capped
  // containers impose (observed swinging single-run numbers by 2-4x).
  constexpr std::uint64_t kRepeats = 5;
  sys.reserve_history(warmup + kRepeats * probe + 1);
  for (std::uint64_t i = 0; i < warmup; ++i) engine.step();

  // schedule_run_count counts inline executions too, so a single-shard run
  // reports its real schedule (fused/batched: 1 per epoch, split: 2)
  // instead of the dispatch counter's misleading 0.
  const std::uint64_t runs_before = engine.schedule_run_count();
  double best_ns = 0.0;
  for (std::uint64_t r = 0; r < kRepeats; ++r) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < probe; ++i) engine.step();
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(probe);
    if (r == 0 || ns < best_ns) best_ns = ns;
  }
  const double dispatches =
      static_cast<double>(engine.schedule_run_count() - runs_before) /
      static_cast<double>(kRepeats * probe);
  return {processes,
          threads,
          engine.shard_count(),
          mode,
          best_ns,
          best_ns / static_cast<double>(processes),
          dispatches};
}

// --- Churn measurements ------------------------------------------------------
//
// An open population at steady state: `target_live` processes, Poisson
// arrivals at `arrival_rate` per epoch, geometric lifetimes with mean
// target_live / arrival_rate (so departures balance arrivals), half the
// departures by scheduled kill and half by natural completion. The
// system/engine/driver tables are all reserved up front, so the engine's
// own lifecycle machinery (admission queue, scheduler batch deltas,
// compaction, attachment table) adds no allocator traffic — that contract
// is pinned by test_parallel_no_alloc's churn suites. What the measured
// epochs DO include is the cost of materialising each arrival (workload +
// actuator construction, early history growth until the retirement pool
// warms): that is the workload of churn itself, and exactly what a
// production monitor pays per admission.

struct ChurnPoint {
  std::size_t target_live;
  double arrival_rate;
  std::size_t threads;
  StepMode mode;
  double ns_per_epoch;
  double ns_per_proc_epoch;
  double mean_live;
  double admissions_per_epoch;
  double exits_per_epoch;
};

ChurnPoint run_churn_point(const ml::Detector& detector,
                           std::size_t target_live, double arrival_rate,
                           std::size_t threads, StepMode mode, bool smoke,
                           const fault::FaultPlane* plane = nullptr) {
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector, threads, mode);
  if (plane != nullptr) engine.arm_faults(plane);

  sim::ScenarioScript script;
  script.seed = 0xcafe + target_live;
  script.initial_processes = target_live;
  script.arrival_rate = arrival_rate;
  script.mean_lifetime = static_cast<double>(target_live) / arrival_rate;
  script.kill_exit_fraction = 0.5;
  script.recycle_histories = true;  // bounded memory at bench scale
  // The shared bench signature keeps the bench MLP quiet (the population
  // holds its steady state — the experiment measures lifecycle cost, not
  // detector FP dynamics) and makes churn rows directly comparable to the
  // closed-population sweep rows.
  sim::ScenarioDriver driver(
      engine, script, nullptr, [](std::uint64_t lifetime) {
        return std::make_unique<bench::SignatureWorkload>(
            bench::engine_bench_benign_signature(), lifetime);
      });

  const std::uint64_t warmup = smoke ? 10 : 20;
  const std::uint64_t probe = std::clamp<std::uint64_t>(
      40960 / static_cast<std::uint64_t>(target_live), 10, 2000);
  const std::uint64_t repeats = smoke ? 2 : 5;
  const std::size_t total_epochs =
      static_cast<std::size_t>(warmup + repeats * probe + 1);
  const std::size_t expected = driver.expected_processes(total_epochs);
  sys.reserve(expected);
  engine.reserve(expected);
  driver.reserve(expected);
  sys.reserve_history(total_epochs);

  for (std::uint64_t i = 0; i < warmup; ++i) driver.step();

  const sim::ScenarioDriver::Stats before = driver.stats();
  double best_ns = 0.0;
  double best_mean_live = 0.0;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    const sim::ScenarioDriver::Stats repeat_before = driver.stats();
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < probe; ++i) driver.step();
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(probe);
    // The per-process figure divides this repeat's timing by this
    // repeat's own live population — the windows must match, or drift
    // across repeats skews the ratio.
    const double repeat_mean_live =
        (driver.stats().live_epoch_sum - repeat_before.live_epoch_sum) /
        static_cast<double>(probe);
    if (r == 0 || ns < best_ns) {
      best_ns = ns;
      best_mean_live = repeat_mean_live;
    }
  }
  const sim::ScenarioDriver::Stats after = driver.stats();
  const double measured =
      static_cast<double>(after.epochs - before.epochs);
  const double mean_live =
      (after.live_epoch_sum - before.live_epoch_sum) / measured;
  const double admissions =
      static_cast<double>(after.spawned - before.spawned) / measured;
  const double exits =
      static_cast<double>((after.driver_kills + after.completed +
                           after.policy_kills) -
                          (before.driver_kills + before.completed +
                           before.policy_kills)) /
      measured;
  return {target_live, arrival_rate, threads,
          mode,        best_ns,      best_ns / best_mean_live,
          mean_live,   admissions,   exits};
}

// --- Snapshot measurements ---------------------------------------------------
//
// The operational-recovery cost model: what a checkpoint actually charges
// the engine thread (capture = structured copy, taken synchronously at the
// epoch boundary), what it charges the Snapshotter worker (encode = byte
// projection + CRC32), how big the artifact is, and what recovery costs
// (parse + restore into a freshly constructed engine). Populations use the
// registered BenchmarkWorkload — the bench-local SignatureWorkload has no
// snapshot hook, and a production snapshot carries real workloads anyway.

struct SnapshotPoint {
  std::size_t processes;
  double capture_us;
  double encode_us;
  double restore_us;  // parse + restore, fresh engine
  std::size_t bytes;
};

SnapshotPoint run_snapshot_point(const ml::Detector& detector,
                                 std::size_t processes, bool smoke) {
  const std::vector<workloads::BenchmarkSpec> palette = workloads::spec2006();
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector);
  for (std::size_t p = 0; p < processes; ++p) {
    workloads::BenchmarkSpec spec = palette[p % palette.size()];
    spec.epochs_of_work = 1e12;  // keep the population fully live
    const sim::ProcessId pid =
        sys.spawn(std::make_unique<workloads::BenchmarkWorkload>(spec));
    engine.attach(pid, core::ValkyrieConfig{},
                  std::make_unique<core::SchedulerWeightActuator>());
  }
  const std::uint64_t warm = smoke ? 32 : 128;  // history the snapshot carries
  sys.reserve_history(warm + 1);
  for (std::uint64_t i = 0; i < warm; ++i) engine.step();

  const int repeats = smoke ? 3 : 7;
  double capture_us = 0.0, encode_us = 0.0, restore_us = 0.0;
  std::vector<std::uint8_t> bytes;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    const snapshot::SnapshotImage image = snapshot::capture(engine);
    const auto t1 = Clock::now();
    bytes = snapshot::encode(image);
    const auto t2 = Clock::now();

    sim::SimSystem sys2;
    core::ValkyrieEngine engine2(sys2, detector);
    const auto t3 = Clock::now();
    const snapshot::SnapshotImage reparsed = snapshot::parse(bytes);
    snapshot::restore(reparsed, engine2, snapshot::RestoreContext{});
    const auto t4 = Clock::now();

    const auto us = [](Clock::time_point a, Clock::time_point b) {
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                     .count()) /
             1e3;
    };
    if (r == 0 || us(t0, t1) < capture_us) capture_us = us(t0, t1);
    if (r == 0 || us(t1, t2) < encode_us) encode_us = us(t1, t2);
    if (r == 0 || us(t3, t4) < restore_us) restore_us = us(t3, t4);
  }
  return {processes, capture_us, encode_us, restore_us, bytes.size()};
}

// --- Batch-kernel micro-measurements -----------------------------------------
//
// Scalar-vs-batch per-item cost of one detector family over a synthetic
// feature plane: the scalar side walks the per-process streaming path (one
// WindowSummary / one measurement vote per column), the batch side issues
// the single plane-sweep call the batched engine schedule issues per shard.

struct KernelRow {
  const char* detector;
  std::size_t batch;
  double scalar_ns;  // per item
  double batch_ns;   // per item
  double speedup;
};

template <typename F>
double best_of_ns_per_item(std::size_t items, int repeats, const F& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    body();
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(items);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

std::vector<KernelRow> run_batch_kernels(bool smoke) {
  std::vector<KernelRow> rows;
  const ml::TraceSet corpus = bench::engine_bench_corpus(0x5ca1e);
  const ml::MlpDetector mlp = bench::engine_bench_detector();
  const ml::SvmDetector svm = ml::SvmDetector::make(corpus, 3);
  const ml::GbtDetector gbt = ml::GbtDetector::make(corpus);
  ml::StatisticalDetector stat;
  stat.fit(ml::flatten(corpus));

  const int repeats = smoke ? 2 : 5;
  const int inner = smoke ? 4 : 16;  // plane sweeps per timing probe
  std::vector<std::size_t> sizes = {16, 256, 4096};
  if (smoke) sizes = {16, 256};

  for (const std::size_t n : sizes) {
    const bench::BatchPlane kp = bench::make_batch_plane(n);
    const ml::SummaryMatrixView view = kp.view();
    const ml::FeatureMatrixView newest = view.newest_view();
    std::vector<ml::Inference> inferences(n);
    std::vector<std::uint8_t> votes(n);
    volatile std::size_t sink = 0;

    // MLP: the per-epoch window inference (its "vote" in the batched
    // schedule), scalar streaming path vs. the blocked batch GEMV.
    const double mlp_scalar =
        best_of_ns_per_item(n * inner, repeats, [&] {
          std::size_t acc = 0;
          for (int k = 0; k < inner; ++k) {
            for (std::size_t c = 0; c < n; ++c) {
              acc += static_cast<std::size_t>(mlp.infer(kp.summaries[c]));
            }
          }
          sink = acc;
        });
    const double mlp_batch = best_of_ns_per_item(n * inner, repeats, [&] {
      for (int k = 0; k < inner; ++k) mlp.infer_batch(view, inferences);
      sink = static_cast<std::size_t>(inferences[0]);
    });
    rows.push_back({"mlp", n, mlp_scalar, mlp_batch, mlp_scalar / mlp_batch});

    const auto vote_pair = [&](const char* name, const ml::Detector& d) {
      const double scalar = best_of_ns_per_item(n * inner, repeats, [&] {
        std::size_t acc = 0;
        for (int k = 0; k < inner; ++k) {
          for (std::size_t c = 0; c < n; ++c) {
            acc += d.measurement_vote(kp.summaries[c].newest) ? 1u : 0u;
          }
        }
        sink = acc;
      });
      const double batch = best_of_ns_per_item(n * inner, repeats, [&] {
        for (int k = 0; k < inner; ++k) d.measurement_votes(newest, votes);
        sink = votes[0];
      });
      rows.push_back({name, n, scalar, batch, scalar / batch});
    };
    vote_pair("svm", svm);
    vote_pair("gbt", gbt);
    vote_pair("stat", stat);
  }
  return rows;
}

// --- Honest environment header -----------------------------------------------
//
// A perf artifact committed from a CPU-share-capped container is misleading
// unless the cap travels with the numbers: hardware_concurrency() reports
// the host's cores, not the runnable share. The header records both, plus a
// timer-noise estimate (min vs median of a fixed spin workload) so a reader
// can judge how much of any row-to-row delta is machine, not code.

/// Effective CPU quota in cores from the cgroup (v2 then v1), or -1.0 when
/// unlimited / undetectable.
double cgroup_cpu_quota() {
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r")) {
    char quota[32] = {0};
    long period = 0;
    const int got = std::fscanf(f, "%31s %ld", quota, &period);
    std::fclose(f);
    if (got == 2 && period > 0 && std::strcmp(quota, "max") != 0) {
      return std::strtod(quota, nullptr) / static_cast<double>(period);
    }
    if (got >= 1 && std::strcmp(quota, "max") == 0) return -1.0;
  }
  long quota = 0;
  long period = 0;
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", "r")) {
    if (std::fscanf(f, "%ld", &quota) != 1) quota = 0;
    std::fclose(f);
  }
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_period_us", "r")) {
    if (std::fscanf(f, "%ld", &period) != 1) period = 0;
    std::fclose(f);
  }
  if (quota > 0 && period > 0) {
    return static_cast<double>(quota) / static_cast<double>(period);
  }
  return -1.0;
}

struct NoiseEstimate {
  double min_us = 0.0;     // cleanest run of the fixed spin
  double median_us = 0.0;  // typical run
  double spread_pct = 0.0; // (median/min - 1) * 100
};

NoiseEstimate measure_timer_noise() {
  std::vector<double> us;
  volatile std::uint64_t sink = 0;
  (void)sink;
  for (int r = 0; r < 9; ++r) {
    const auto t0 = Clock::now();
    std::uint64_t acc = 1469598103934665603ull;
    for (std::uint64_t i = 0; i < (1u << 20); ++i) {
      acc = (acc ^ i) * 1099511628211ull;
    }
    sink = acc;
    us.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 t0)
                .count()) /
        1e3);
  }
  std::sort(us.begin(), us.end());
  NoiseEstimate est;
  est.min_us = us.front();
  est.median_us = us[us.size() / 2];
  est.spread_pct =
      est.min_us > 0.0 ? (est.median_us / est.min_us - 1.0) * 100.0 : 0.0;
  return est;
}

/// Process memory, from /proc/self/status: VmHWM (peak RSS since start —
/// the number the flat-RSS acceptance claim is judged on, since a transient
/// O(total-pids) table would spike it even if freed later) and VmRSS
/// (current). -1 when the pseudo-file is unavailable (non-Linux).
struct RssSample {
  long peak_kb = -1;
  long current_kb = -1;
};

RssSample read_rss() {
  RssSample r;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long kb = 0;
      if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
        r.peak_kb = kb;
      } else if (std::sscanf(line, "VmRSS: %ld", &kb) == 1) {
        r.current_kb = kb;
      }
    }
    std::fclose(f);
  }
  return r;
}

// --- Pid-map scale ----------------------------------------------------------
//
// The million-pid claim, measured: an open population churning through
// `total` short-lived pids while only `target_live` are live, with the
// retirement-retention policy reclaiming every cold row (and parked
// scheduler weight) two epochs after death. Every pid-keyed structure is
// O(tracked) now, so peak RSS and ns/proc/epoch measured at the START of
// steady state must match the values at the END of the run — any
// O(total-pids-ever) residue in the tables would show up in both.

struct PidScalePoint {
  std::size_t target_live = 0;
  std::uint64_t spawned = 0;
  double early_ns_per_proc_epoch = 0.0;  // probe right after warmup
  double late_ns_per_proc_epoch = 0.0;   // probe at the end of the run
  long steady_peak_rss_kb = -1;  // VmHWM once steady state is reached
  long end_peak_rss_kb = -1;     // VmHWM after the full churn
  long end_current_rss_kb = -1;
  std::size_t tracked_end = 0;        // live + retired-in-window
  std::size_t pid_table_capacity = 0;
  std::size_t cold_rows = 0;
  std::size_t sched_table_capacity = 0;
};

PidScalePoint run_pid_scale_point(std::size_t target_live,
                                  std::uint64_t total, bool smoke) {
  sim::SimSystem sys;
  sys.enable_counter_rng();
  sys.enable_bounded_history(8);
  sys.enable_history_recycling();
  sys.enable_retirement_retention(2);
  const std::size_t batch = std::max<std::size_t>(1, target_live / 8);
  sys.reserve(target_live + batch * 4);

  auto spawn_one = [&sys] {
    (void)sys.spawn(std::make_unique<bench::SignatureWorkload>(
        bench::engine_bench_benign_signature()));
  };
  // Kill through a forward cursor over the (dense, ascending) pid space:
  // the oldest live pid dies first, exactly the shortest-lifetime-first
  // order a real churn driver produces. A pid the cursor finds already
  // gone (self-completed, then reclaimed by the retention window) is
  // skipped.
  sim::ProcessId kill_cursor = 0;
  auto try_kill = [&sys](sim::ProcessId pid) {
    try {
      if (sys.is_live(pid)) {
        sys.kill(pid);
        return true;
      }
    } catch (const std::out_of_range&) {  // reclaimed: nothing to kill
    }
    return false;
  };
  auto churn_epoch = [&] {
    const std::size_t live_now = sys.live_processes().size();
    const std::size_t want = target_live + batch;
    for (std::size_t b = live_now; b < want; ++b) spawn_one();
    std::size_t killed = 0;
    while (killed < batch) {
      if (try_kill(kill_cursor)) ++killed;
      ++kill_cursor;
    }
    sys.run_epoch();
  };

  for (std::size_t i = 0; i < target_live; ++i) spawn_one();
  sys.run_epoch();  // admit the seed population
  // Warm until the retention pipeline is full (several windows deep), so
  // the steady-state RSS mark already includes every table at final size.
  for (int e = 0; e < 12; ++e) churn_epoch();

  PidScalePoint p;
  p.target_live = target_live;
  p.steady_peak_rss_kb = read_rss().peak_kb;

  const int probe = smoke ? 4 : 16;
  auto timed_probe = [&] {
    const auto t0 = Clock::now();
    for (int e = 0; e < probe; ++e) churn_epoch();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    return ns / (static_cast<double>(probe) *
                 static_cast<double>(target_live));
  };
  p.early_ns_per_proc_epoch = timed_probe();
  while (sys.total_spawned() < total) churn_epoch();
  p.late_ns_per_proc_epoch = timed_probe();

  const RssSample end = read_rss();
  p.end_peak_rss_kb = end.peak_kb;
  p.end_current_rss_kb = end.current_kb;
  p.spawned = sys.total_spawned();
  p.tracked_end = sys.tracked_processes();
  p.pid_table_capacity = sys.pid_table_capacity();
  p.cold_rows = sys.cold_rows_allocated();
  p.sched_table_capacity = sys.scheduler().table_capacity();
  return p;
}

// The lookup duel behind the port: `live` pids surviving out of a
// `pid_space`-sized churn, looked up through the dense pid-indexed vector
// the old code used (O(pid_space) memory, one dependent load), the hashed
// map's scalar find, and its prefetching batched find_many. The dense row
// is the memory-for-latency trade the refactor rejects; batched-vs-scalar
// is the speedup the epoch loop actually runs on.

struct PidLookupPoint {
  std::size_t live = 0;
  std::uint64_t pid_space = 0;
  double dense_ns = 0.0;
  double scalar_ns = 0.0;
  double batched_ns = 0.0;
  std::size_t dense_bytes = 0;
  std::size_t map_bytes = 0;
};

PidLookupPoint run_pid_lookup_point(std::size_t live,
                                    std::uint64_t pid_space, bool smoke) {
  PidLookupPoint p;
  p.live = live;
  p.pid_space = pid_space;

  // Survivor pids spread across the whole churned pid space (stride keeps
  // them distinct), visited in shuffled order like a hash-ordered caller.
  std::vector<std::uint32_t> keys(live);
  const std::uint64_t stride = pid_space / live;
  std::mt19937_64 shuffle_rng(0x9d1d5ca1eull);
  for (std::size_t i = 0; i < live; ++i) {
    keys[i] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(i) * stride +
        (shuffle_rng() % std::max<std::uint64_t>(stride, 1)));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::shuffle(keys.begin(), keys.end(), shuffle_rng);

  util::PidMap<std::uint32_t> map;
  map.reserve(keys.size());
  std::vector<std::uint32_t> dense(pid_space, 0xffffffffu);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    map.insert(keys[i], static_cast<std::uint32_t>(i));
    dense[keys[i]] = static_cast<std::uint32_t>(i);
  }
  p.dense_bytes = dense.size() * sizeof(std::uint32_t);
  // keys + values + distance byte per bucket.
  p.map_bytes = map.capacity() * (sizeof(std::uint32_t) * 2 + 1);

  const int reps = smoke ? 64 : 512;
  volatile std::uint64_t sink = 0;
  auto time_pass = [&](auto&& body) {
    body();  // warm
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) body();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    return ns / (static_cast<double>(reps) *
                 static_cast<double>(keys.size()));
  };
  p.dense_ns = time_pass([&] {
    std::uint64_t acc = 0;
    for (const std::uint32_t pid : keys) acc += dense[pid];
    sink = acc;
  });
  p.scalar_ns = time_pass([&] {
    std::uint64_t acc = 0;
    for (const std::uint32_t pid : keys) acc += *map.find(pid);
    sink = acc;
  });
  p.batched_ns = time_pass([&] {
    std::uint64_t acc = 0;
    map.find_many(keys, [&](std::size_t, const std::uint32_t* v) {
      acc += *v;
    });
    sink = acc;
  });
  (void)sink;
  return p;
}

// --- Sim-side component breakdown --------------------------------------------
//
// Where one simulated epoch's nanoseconds actually go, component by
// component, each timed in isolation over the same population size: the RNG
// + signature draw that is workload execution and HPC capture for the bench
// workload (xoshiro stream vs the counter stream the perf tier swaps in),
// feature extraction, the history append (unbounded vector vs bounded
// ring), the window fold (scalar per-slot Welford vs the plane-major batch
// kernel), batch inference, and the serial epoch bookkeeping — plus one
// full engine step as the reference total. This is the map that justifies
// which component the next optimisation should attack.

struct BreakdownRow {
  const char* component;
  double ns_per_proc;
};

std::vector<BreakdownRow> run_sim_breakdown(const ml::MlpDetector& detector,
                                            bool smoke) {
  const std::size_t n = smoke ? 256 : 2048;
  const int reps = smoke ? 3 : 7;
  const int inner = smoke ? 4 : 8;  // population passes per timing probe
  std::vector<BreakdownRow> rows;
  const hpc::HpcSignature sig = bench::engine_bench_benign_signature();

  // Workload execution + HPC capture: one signature draw per process.
  {
    util::Rng rng(0x1234);
    volatile double sink = 0;
    rows.push_back({"workload_hpc_xoshiro",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      double acc = 0.0;
                      for (int k = 0; k < inner; ++k) {
                        for (std::size_t c = 0; c < n; ++c) {
                          acc += sig.sample(rng, 1.0, 1.0).counts[0];
                        }
                      }
                      sink = acc;
                    })});
  }
  {
    util::Rng rng = util::Rng::counter_stream(0x1234);
    volatile double sink = 0;
    rows.push_back({"workload_hpc_counter",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      double acc = 0.0;
                      for (int k = 0; k < inner; ++k) {
                        for (std::size_t c = 0; c < n; ++c) {
                          acc += sig.sample(rng, 1.0, 1.0).counts[0];
                        }
                      }
                      sink = acc;
                    })});
  }

  // Shared sample set for the downstream components.
  util::Rng rng(0xfeed);
  std::vector<hpc::HpcSample> samples;
  samples.reserve(n);
  for (std::size_t c = 0; c < n; ++c) samples.push_back(sig.sample(rng));

  // Feature extraction into a plane column (the fold-staging write).
  const std::size_t stride = (n + 7) / 8 * 8;
  std::vector<double> newest_rows(hpc::kFeatureDim * stride, 0.0);
  {
    volatile double sink = 0;
    rows.push_back({"to_features", best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) {
                        for (std::size_t c = 0; c < n; ++c) {
                          hpc::to_features(samples[c], newest_rows.data() + c,
                                           stride);
                        }
                      }
                      sink = newest_rows[0];
                    })});
  }

  // History append: unbounded vector push vs bounded ring overwrite.
  {
    std::vector<std::vector<hpc::HpcSample>> hist(n);
    for (auto& h : hist) h.reserve(static_cast<std::size_t>(inner) * 8);
    int round = 0;
    rows.push_back({"history_append_vector",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      if (++round % 8 == 0) {
                        for (auto& h : hist) h.clear();
                      }
                      for (int k = 0; k < inner; ++k) {
                        for (std::size_t c = 0; c < n; ++c) {
                          hist[c].push_back(samples[c]);
                        }
                      }
                    })});
  }
  {
    constexpr std::size_t kCap = 64;
    std::vector<std::vector<hpc::HpcSample>> hist(n);
    std::vector<std::size_t> head(n, 0);
    for (auto& h : hist) h.resize(kCap);
    rows.push_back({"history_append_ring",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) {
                        for (std::size_t c = 0; c < n; ++c) {
                          hist[c][head[c]] = samples[c];
                          head[c] = head[c] + 1 == kCap ? 0 : head[c] + 1;
                        }
                      }
                    })});
  }

  // Window fold: per-slot scalar Welford vs the plane-major batch kernel
  // over the identical column data (fold cost is count-independent, so the
  // accumulating state does not skew the repeats).
  {
    std::vector<ml::WindowAccumulator> accs(n);
    hpc::FeatureVec f;
    rows.push_back({"window_fold_scalar",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) {
                        for (std::size_t c = 0; c < n; ++c) {
                          hpc::to_features(samples[c], f);
                          accs[c].add_features(f);
                        }
                      }
                    })});
  }
  {
    // 5 row groups x kFeatureDim: newest, mean, stddev, m2, fcount.
    std::vector<double> plane(5 * hpc::kFeatureDim * stride, 0.0);
    std::vector<std::uint8_t> pending(n, 1);
    std::vector<std::uint32_t> masks(n, 0);
    ml::PlaneFoldRows fold_rows;
    fold_rows.newest = plane.data();
    fold_rows.mean = plane.data() + hpc::kFeatureDim * stride;
    fold_rows.stddev = plane.data() + 2 * hpc::kFeatureDim * stride;
    fold_rows.m2 = plane.data() + 3 * hpc::kFeatureDim * stride;
    fold_rows.fcount = plane.data() + 4 * hpc::kFeatureDim * stride;
    fold_rows.stride = stride;
    for (std::size_t c = 0; c < n; ++c) {
      hpc::to_features(samples[c], plane.data() + c, stride);
    }
    rows.push_back({"window_fold_plane",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) {
                        ml::fold_plane_columns(fold_rows, pending.data(),
                                               masks.data(), 0, n);
                      }
                    })});
  }

  // Batch inference over a populated plane (the per-epoch detector cost the
  // batched schedule pays per live slot).
  {
    const bench::BatchPlane bp = bench::make_batch_plane(n);
    std::vector<ml::Inference> out(n);
    volatile std::size_t sink = 0;
    rows.push_back({"inference_mlp_batch",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) {
                        detector.infer_batch(bp.view(), out);
                      }
                      sink = static_cast<std::size_t>(out[0]);
                    })});
  }

  // Serial epoch bookkeeping: the begin/end pair (CFS share snapshot,
  // lifecycle commit, epoch close) with no slots stepped in between.
  {
    sim::SimSystem sys;
    for (std::size_t c = 0; c < n; ++c) {
      (void)sys.spawn(std::make_unique<bench::SignatureWorkload>(sig));
    }
    rows.push_back({"epoch_commit_serial",
                    best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) {
                        sys.begin_epoch();
                        sys.end_epoch();
                      }
                    })});
  }

  // Reference: one full single-thread batched engine step.
  {
    sim::SimSystem sys;
    core::ValkyrieEngine engine(sys, detector, 1, StepMode::kBatched);
    for (std::size_t c = 0; c < n; ++c) {
      const sim::ProcessId pid =
          sys.spawn(std::make_unique<bench::SignatureWorkload>(sig));
      engine.attach(pid, core::ValkyrieConfig{},
                    std::make_unique<core::SchedulerWeightActuator>());
    }
    sys.reserve_history(
        static_cast<std::size_t>(reps * inner) + 24);
    for (int i = 0; i < 16; ++i) engine.step();
    rows.push_back({"total_epoch", best_of_ns_per_item(n * inner, reps, [&] {
                      for (int k = 0; k < inner; ++k) engine.step();
                    })});
  }
  return rows;
}

// --- The sim-floor A/B: perf options vs the PR 8 baseline --------------------
//
// The headline rows: single-thread ns/proc/epoch for the stock system
// (xoshiro, unbounded histories, per-slot scalar fold, bit-exact kernels)
// vs the perf configuration (plane-major fold + counter RNG + bounded ring
// histories, still bit-exact) vs perf + the approximate fast inference
// tier. The exact-perf row must replay byte-identically to baseline; the
// fast row trades pinned, measured accuracy deltas (fast_tier_efficacy) for
// the last stretch of throughput.

struct SimFastRow {
  const char* config;
  std::size_t processes;
  double ns_per_proc_epoch;
  double speedup;  // vs the baseline row at the same process count
};

struct SimFastTriple {
  double baseline_ns = 0.0;  // ns/proc/epoch, best interleaved round
  double exact_ns = 0.0;
  double fast_ns = 0.0;
};

/// Measures all three configurations with their probe rounds INTERLEAVED
/// (baseline, exact, fast, baseline, ...) so every configuration samples
/// the same machine weather — on a shared-LLC box, minutes-apart
/// measurements see different neighbors and the ratios drift. Each
/// config's result is its best round; min filters the spikes that hit
/// one round of one config.
SimFastTriple run_sim_fast(const ml::Detector& detector,
                           const ml::Detector& fast_detector,
                           std::size_t processes, bool smoke) {
  const std::uint64_t warmup = 20;
  const std::uint64_t probe = std::clamp<std::uint64_t>(
      40960 / static_cast<std::uint64_t>(processes), 10, 2000);
  const std::uint64_t rounds = smoke ? 3 : 9;

  struct World {
    std::unique_ptr<sim::SimSystem> sys;
    std::unique_ptr<core::ValkyrieEngine> engine;
    double best_ns = 0.0;
  };
  const auto make_world = [&](const ml::Detector& d, bool perf_options) {
    World w;
    w.sys = std::make_unique<sim::SimSystem>();
    if (perf_options) {
      w.sys->enable_plane_major_fold();
      w.sys->enable_counter_rng();
      // 32 comfortably covers the monitor's N* = 15 measurement
      // episodes; raw history is pure observability in this run, so the
      // cap is sized for cache footprint (32 * 96 B = 3 KiB per live
      // process).
      w.sys->enable_bounded_history(32);
    }
    w.engine = std::make_unique<core::ValkyrieEngine>(*w.sys, d, 1,
                                                      StepMode::kBatched);
    for (std::size_t p = 0; p < processes; ++p) {
      const sim::ProcessId pid =
          w.sys->spawn(std::make_unique<bench::SignatureWorkload>(
              bench::engine_bench_benign_signature()));
      w.engine->attach(pid, core::ValkyrieConfig{},
                       std::make_unique<core::SchedulerWeightActuator>());
    }
    w.sys->reserve_history(warmup + rounds * probe + 1);
    for (std::uint64_t i = 0; i < warmup; ++i) w.engine->step();
    return w;
  };

  World worlds[3] = {make_world(detector, false), make_world(detector, true),
                     make_world(fast_detector, true)};
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (World& w : worlds) {
      const auto start = Clock::now();
      for (std::uint64_t i = 0; i < probe; ++i) w.engine->step();
      const auto stop = Clock::now();
      const double ns =
          static_cast<double>(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(stop - start)
                                  .count()) /
          static_cast<double>(probe);
      if (r == 0 || ns < w.best_ns) w.best_ns = ns;
    }
  }
  const double scale = static_cast<double>(processes);
  return {worlds[0].best_ns / scale, worlds[1].best_ns / scale,
          worlds[2].best_ns / scale};
}

// --- Fast-tier efficacy deltas (fig. 1 style) --------------------------------
//
// The fast tier is only shippable with its accuracy cost measured, not
// assumed. Windows are drawn from signatures blended between the benign and
// attack poles (partially expressed attack behaviour — the regime where
// detection actually operates near the decision boundary), and classified
// by both tiers at growing window lengths: the fig. 1 shape (efficacy vs
// measurement count) with one curve per tier, committed as deltas.

struct EfficacyRow {
  std::size_t window;
  double exact_accuracy;
  double fast_accuracy;
};

std::vector<EfficacyRow> run_tier_efficacy(bool smoke) {
  ml::MlpDetector exact = bench::engine_bench_detector();
  ml::MlpDetector fast = bench::engine_bench_detector();
  fast.set_tier(ml::InferenceTier::kFast);
  const hpc::HpcSignature benign = bench::engine_bench_benign_signature();
  const hpc::HpcSignature attack = bench::engine_bench_attack_signature();
  const std::size_t per_class = smoke ? 48 : 192;
  util::Rng rng(0xeff1ca);
  std::vector<EfficacyRow> rows;
  for (const std::size_t w : {std::size_t{5}, std::size_t{10}, std::size_t{20},
                              std::size_t{40}}) {
    std::size_t exact_ok = 0;
    std::size_t fast_ok = 0;
    std::size_t total = 0;
    for (int label = 0; label < 2; ++label) {
      for (std::size_t t = 0; t < per_class; ++t) {
        // Blend fraction toward the attack pole: benign windows sit at
        // 0.15-0.45, attack windows at 0.55-0.85 — both near enough to the
        // boundary that window length (and tier) genuinely matters.
        const double a = label == 1 ? rng.uniform(0.55, 0.85)
                                    : rng.uniform(0.15, 0.45);
        hpc::HpcSignature mixed = benign;
        for (std::size_t e = 0; e < hpc::kNumEvents; ++e) {
          mixed.mean[e] = (1.0 - a) * benign.mean[e] + a * attack.mean[e];
        }
        std::vector<hpc::HpcSample> window;
        window.reserve(w);
        for (std::size_t i = 0; i < w; ++i) window.push_back(mixed.sample(rng));
        const ml::Inference want =
            label == 1 ? ml::Inference::kMalicious : ml::Inference::kBenign;
        const std::span<const hpc::HpcSample> span(window);
        exact_ok += exact.infer(span) == want ? 1 : 0;
        fast_ok += fast.infer(span) == want ? 1 : 0;
        ++total;
      }
    }
    rows.push_back({w, static_cast<double>(exact_ok) / static_cast<double>(total),
                    static_cast<double>(fast_ok) / static_cast<double>(total)});
  }
  return rows;
}

// --- Fault-plane overhead + recovery latency ---------------------------------
//
// The graceful-degradation cost model. Overhead rows run the closed-
// population step with a fault plane armed: the armed-but-idle row prices
// the hardened paths themselves (per-(epoch, pid) sensor draws, sample
// validation, guarded inference, retry-aware commit) and must sit at ~0%
// over baseline — that contract is pinned allocation-wise by
// test_parallel_no_alloc and priced here. The sensor rows price real
// quarantine traffic at production-plausible (1%) and pathological (10%)
// loss rates. The recovery row times one full SupervisedEngine
// crash-restore-replay cycle: snapshotter flush + parse + world rebuild +
// deterministic replay to the present.

double run_fault_ns(const ml::Detector& detector,
                    const fault::FaultPlane* plane, std::size_t processes,
                    std::size_t threads, StepMode mode, bool smoke,
                    core::ValkyrieEngine::FaultHealth* health) {
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector, threads, mode);
  if (plane != nullptr) engine.arm_faults(plane);
  for (std::size_t p = 0; p < processes; ++p) {
    const sim::ProcessId pid =
        sys.spawn(std::make_unique<bench::SignatureWorkload>(
            bench::engine_bench_benign_signature()));
    engine.attach(pid, core::ValkyrieConfig{},
                  std::make_unique<core::SchedulerWeightActuator>());
  }

  const std::uint64_t warmup = 20;
  const std::uint64_t probe = std::clamp<std::uint64_t>(
      40960 / static_cast<std::uint64_t>(processes), 10, 2000);
  const std::uint64_t repeats = smoke ? 2 : 5;
  sys.reserve_history(warmup + repeats * probe + 1);
  for (std::uint64_t i = 0; i < warmup; ++i) engine.step();

  double best_ns = 0.0;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < probe; ++i) engine.step();
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(probe);
    if (r == 0 || ns < best_ns) best_ns = ns;
  }
  if (health != nullptr) *health = engine.fault_health();
  return best_ns;
}

struct RecoveryPoint {
  std::size_t processes;
  std::uint64_t replay_epochs;
  double step_us;      // one steady-state supervised step, for reference
  double recovery_us;  // the crash step: epoch + flush/parse/rebuild/replay
};

RecoveryPoint run_recovery_point(const ml::Detector& detector,
                                 std::size_t processes, bool smoke) {
  const std::uint64_t crash_at = smoke ? 24 : 40;
  const auto factory =
      [&detector,
       processes](const snapshot::SnapshotImage* image) -> core::SupervisedWorld {
    core::SupervisedWorld world;
    world.system = std::make_unique<sim::SimSystem>();
    world.engine =
        std::make_unique<core::ValkyrieEngine>(*world.system, detector);
    if (image == nullptr) {
      const std::vector<workloads::BenchmarkSpec> palette =
          workloads::spec2006();
      // An unreachable measurement budget keeps the monitors out of the
      // terminable phase: the bench MLP flags benchmark workloads, and a
      // policy-killed population would make the recovery replay trivial.
      core::ValkyrieConfig monitor_config;
      monitor_config.required_measurements = 1'000'000'000;
      for (std::size_t p = 0; p < processes; ++p) {
        workloads::BenchmarkSpec spec = palette[p % palette.size()];
        spec.epochs_of_work = 1e12;  // keep the population fully live
        const sim::ProcessId pid = world.system->spawn(
            std::make_unique<workloads::BenchmarkWorkload>(spec));
        world.engine->attach(pid, monitor_config,
                             std::make_unique<core::SchedulerWeightActuator>());
      }
    } else {
      snapshot::restore(*image, *world.engine, snapshot::RestoreContext{});
    }
    return world;
  };
  core::SupervisedEngine::Config config;
  config.checkpoint_interval = 16;  // crash mid-interval: replay 8 epochs
  config.crash_epochs = {crash_at};
  core::SupervisedEngine supervisor(factory, config);
  supervisor.run(crash_at - 2);

  const auto us_since = [](Clock::time_point a) {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - a)
                                   .count()) /
           1e3;
  };
  const auto t0 = Clock::now();
  supervisor.step();  // steady-state reference step
  const double step_us = us_since(t0);
  const auto t1 = Clock::now();
  supervisor.step();  // completes epoch `crash_at`, then crash + recovery
  const double recovery_us = us_since(t1);
  return {processes, supervisor.health().epochs_replayed, step_us, recovery_us};
}

// --- The priced MTTR model ---------------------------------------------------
//
// Recovery cost is replay distance, and replay distance is bought down by
// checkpoint cadence: a short interval pays encode/confirm overhead every
// few epochs so that a crash replays almost nothing; a long interval is
// nearly free until the crash, which then replays up to a full interval
// (or two, if the latest generation is torn). This sweep prices both
// sides of that trade across checkpoint_interval x domain-burst severity,
// over a fixed deterministic crash schedule, so the committed JSON holds
// the actual curve instead of the folklore version of it.

struct MttrPoint {
  std::uint64_t interval;
  std::uint64_t checkpoints;      // sink-confirmed
  std::uint64_t recoveries;
  std::uint64_t worst_replay;     // epochs
  double mean_replay;             // epochs
  double campaign_ms;             // whole campaign incl. checkpoint cost
  double mean_recovery_us;        // mean wall time of the crash steps
};

MttrPoint run_mttr_point(const ml::Detector& detector,
                         const fault::FaultPlane& plane,
                         std::uint64_t interval, bool smoke) {
  const std::size_t processes = smoke ? 128 : 512;
  const std::uint64_t epochs = smoke ? 120 : 400;
  const std::vector<std::uint64_t> crashes =
      smoke ? std::vector<std::uint64_t>{40, 80}
            : std::vector<std::uint64_t>{97, 210, 340};

  const auto factory =
      [&detector, &plane,
       processes](const snapshot::SnapshotImage* image) -> core::SupervisedWorld {
    core::SupervisedWorld world;
    world.system = std::make_unique<sim::SimSystem>();
    world.engine =
        std::make_unique<core::ValkyrieEngine>(*world.system, detector);
    world.engine->arm_faults(&plane);
    if (image == nullptr) {
      // Snapshot-capable population (SignatureWorkload has no snapshot
      // hooks), pinned live: the monitors stay out of the terminable
      // phase so every replay re-runs the full population.
      const std::vector<workloads::BenchmarkSpec> palette =
          workloads::spec2006();
      core::ValkyrieConfig monitor_config;
      monitor_config.required_measurements = 1'000'000'000;
      for (std::size_t p = 0; p < processes; ++p) {
        workloads::BenchmarkSpec spec = palette[p % palette.size()];
        spec.epochs_of_work = 1e12;
        const sim::ProcessId pid = world.system->spawn(
            std::make_unique<workloads::BenchmarkWorkload>(spec));
        world.engine->attach(pid, monitor_config,
                             std::make_unique<core::SchedulerWeightActuator>());
      }
    } else {
      snapshot::restore(*image, *world.engine, snapshot::RestoreContext{});
    }
    return world;
  };

  core::SupervisedEngine::Config config;
  config.checkpoint_interval = interval;
  config.crash_epochs = crashes;
  core::SupervisedEngine supervisor(factory, config);

  double recovery_ns = 0.0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 1; i <= epochs; ++i) {
    const bool crash_step =
        std::find(crashes.begin(), crashes.end(), i) != crashes.end();
    const auto t1 = crash_step ? Clock::now() : Clock::time_point{};
    supervisor.step();
    if (crash_step) {
      recovery_ns += static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t1)
              .count());
    }
  }
  const double campaign_ms =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - t0)
                              .count()) /
      1e6;

  (void)supervisor.latest_checkpoint();  // settle the confirmed count
  const core::SupervisedEngine::Health health = supervisor.health();
  const double mean_replay =
      health.recoveries > 0
          ? static_cast<double>(health.epochs_replayed) /
                static_cast<double>(health.recoveries)
          : 0.0;
  const double mean_recovery_us =
      health.recoveries > 0
          ? recovery_ns / 1e3 / static_cast<double>(health.recoveries)
          : 0.0;
  return {interval,     health.checkpoints, health.recoveries,
          health.worst_replay, mean_replay,  campaign_ms,
          mean_recovery_us};
}

// --- Minimal JSON well-formedness check --------------------------------------
//
// Not a full validator — just enough structure awareness (objects, arrays,
// strings, numbers, literals, commas/colons) to catch an emitter bug like a
// trailing comma or unbalanced bracket before the file is committed as a
// perf artifact.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') {
        ++pos_;
      } else if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    const auto eat_digits = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    return digits && pos_ > begin;
  }
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': {
        ++pos_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (pos_ >= s_.size() || s_[pos_] != ':') return false;
          ++pos_;
          skip_ws();
          if (!value()) return false;
          skip_ws();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          break;
        }
        if (pos_ >= s_.size() || s_[pos_] != '}') return false;
        ++pos_;
        return true;
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!value()) return false;
          skip_ws();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          break;
        }
        if (pos_ >= s_.size() || s_[pos_] != ']') return false;
        ++pos_;
        return true;
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_engine.json";
  std::size_t max_threads = 8;
  bool smoke = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    if (positional == 0) {
      out_path = argv[i];
    } else if (positional == 1) {
      char* parse_end = nullptr;
      const unsigned long parsed = std::strtoul(argv[i], &parse_end, 10);
      if (parse_end == argv[i] || *parse_end != '\0' || parsed == 0) {
        std::fprintf(stderr, "max_threads must be a positive integer, got %s\n",
                     argv[i]);
        return 1;
      }
      max_threads = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: %s [out.json] [max_threads] [--smoke]\n",
                   argv[0]);
      return 1;
    }
    ++positional;
  }

  const ml::MlpDetector detector = bench::engine_bench_detector();

  std::string json = "{\n  \"benchmark\": \"engine_scaling\",\n";
  json += "  \"smoke\": ";
  json += smoke ? "true" : "false";
  json += ",\n";
  // Honest environment header: hardware_concurrency is the host's view;
  // the cgroup quota is how much of it this container may actually run,
  // and the noise probe says how repeatable a single timing is here today.
  // Current/peak RSS sampled after every bench section — the memory
  // counterpart of the timing rows, and what makes the pid_scale flat-RSS
  // claim checkable from the artifact alone.
  std::vector<std::pair<const char*, RssSample>> rss_sections;
  const auto sample_section_rss = [&rss_sections](const char* section) {
    rss_sections.emplace_back(section, read_rss());
  };
  {
    const double quota = cgroup_cpu_quota();
    const NoiseEstimate noise = measure_timer_noise();
    const RssSample rss = read_rss();
    char quota_str[32] = "null";
    if (quota > 0.0) std::snprintf(quota_str, sizeof(quota_str), "%.2f", quota);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"environment\": {\"hardware_threads\": %u, "
                  "\"cgroup_cpu_quota\": %s, "
                  "\"peak_rss_kb\": %ld, \"current_rss_kb\": %ld, "
                  "\"noise\": {\"spin_min_us\": %.1f, \"spin_median_us\": "
                  "%.1f, \"spread_pct\": %.1f}},\n",
                  std::thread::hardware_concurrency(), quota_str, rss.peak_kb,
                  rss.current_kb, noise.min_us, noise.median_us,
                  noise.spread_pct);
    json += buf;
    std::printf(
        "environment: %u hardware threads, cpu quota %s, peak rss %ld kB, "
        "spin noise min %.1f us median %.1f us (+%.1f%%)\n",
        std::thread::hardware_concurrency(),
        quota > 0.0 ? "limited" : "unlimited", rss.peak_kb, noise.min_us,
        noise.median_us, noise.spread_pct);
  }
  json += "  \"series\": [\n";
  const std::size_t process_counts[] = {1, 8};
  const std::uint64_t series_max_epoch = smoke ? 500 : 5000;
  bool first_series = true;
  for (const std::size_t processes : process_counts) {
    const std::vector<Point> points =
        run_series(detector, processes, series_max_epoch);
    if (!first_series) json += ",\n";
    first_series = false;
    json += "    {\"processes\": " + std::to_string(processes) +
            ", \"points\": [";
    bool first = true;
    for (const Point& p : points) {
      if (!first) json += ", ";
      first = false;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "{\"epoch\": %llu, \"ns_per_epoch\": %.1f}",
                    static_cast<unsigned long long>(p.epoch), p.ns_per_epoch);
      json += buf;
    }
    json += "]}";
    std::printf("processes=%zu:", processes);
    for (const Point& p : points) {
      std::printf("  epoch %llu: %.0f ns/epoch",
                  static_cast<unsigned long long>(p.epoch), p.ns_per_epoch);
    }
    std::printf("\n");
  }
  sample_section_rss("series");
  json += "\n  ],\n  \"sweep\": [\n";

  // Shard sweep: step-schedule x thread-count x process-count grid. The
  // split rows keep the PR 2 two-dispatch schedule measurable next to the
  // fused rows, and the batched rows record the cross-slot batch-inference
  // gain over fused (batch_speedup) at identical configurations.
  std::vector<std::size_t> sweep_processes = {8, 64, 256, 1024, 4096};
  if (smoke) sweep_processes = {8, 64};
  std::vector<std::size_t> sweep_threads;
  for (std::size_t t = 1; t <= max_threads; t *= 2) sweep_threads.push_back(t);
  // A non-power-of-two cap (e.g. a 6-core box) still gets its own row.
  if (sweep_threads.back() != max_threads) sweep_threads.push_back(max_threads);
  bool first_point = true;
  for (const std::size_t processes : sweep_processes) {
    // ns_per_epoch of the fused row at the same thread count, for the
    // batched rows' batch_speedup field (fused runs first).
    std::vector<double> fused_ns(sweep_threads.size(), 0.0);
    for (const StepMode mode :
         {StepMode::kFused, StepMode::kSplit, StepMode::kBatched}) {
      double baseline_ns = 0.0;
      for (std::size_t ti = 0; ti < sweep_threads.size(); ++ti) {
        const std::size_t threads = sweep_threads[ti];
        const SweepPoint p = run_sweep_point(detector, processes, threads, mode);
        if (threads == 1) baseline_ns = p.ns_per_epoch;
        if (mode == StepMode::kFused) fused_ns[ti] = p.ns_per_epoch;
        const double speedup =
            baseline_ns > 0.0 ? baseline_ns / p.ns_per_epoch : 0.0;
        if (!first_point) json += ",\n";
        first_point = false;
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "    {\"processes\": %zu, \"threads\": %zu, "
                      "\"effective_shards\": %zu, "
                      "\"mode\": \"%s\", \"ns_per_epoch\": %.1f, "
                      "\"ns_per_proc_epoch\": %.1f, \"speedup\": %.2f, "
                      "\"dispatches_per_epoch\": %.1f, \"inline\": %s",
                      p.processes, p.threads, p.effective_shards,
                      mode_name(mode), p.ns_per_epoch, p.ns_per_proc_epoch,
                      speedup, p.dispatches_per_epoch,
                      p.effective_shards == 1 ? "true" : "false");
        json += buf;
        double batch_speedup = 0.0;
        if (mode == StepMode::kBatched && p.ns_per_epoch > 0.0) {
          batch_speedup = fused_ns[ti] / p.ns_per_epoch;
          std::snprintf(buf, sizeof(buf), ", \"batch_speedup\": %.2f",
                        batch_speedup);
          json += buf;
        }
        json += "}";
        std::printf(
            "processes=%zu threads=%zu (shards=%zu) %s: %.0f ns/epoch  "
            "%.1f ns/proc/epoch  speedup %.2fx  %.1f dispatches/epoch",
            p.processes, p.threads, p.effective_shards, mode_name(mode),
            p.ns_per_epoch, p.ns_per_proc_epoch, speedup,
            p.dispatches_per_epoch);
        if (mode == StepMode::kBatched) {
          std::printf("  batch_speedup %.2fx", batch_speedup);
        }
        std::printf("\n");
      }
    }
  }
  sample_section_rss("sweep");
  json += "\n  ],\n  \"churn\": [\n";

  // Churn sweep: open population, arrivals/exits balanced at the target
  // live count. The batched schedule is the production default; the fused
  // rows isolate what the lifecycle costs without batch inference.
  std::vector<std::size_t> churn_live = {1024, 4096};
  std::vector<double> churn_rate_div = {128.0, 32.0};  // rate = live / div
  std::vector<StepMode> churn_modes = {StepMode::kFused, StepMode::kBatched};
  std::vector<std::size_t> churn_threads = {1};
  if (max_threads > 1) churn_threads.push_back(max_threads);
  if (smoke) {
    churn_live = {1024};
    churn_rate_div = {64.0};
    churn_modes = {StepMode::kBatched};
    churn_threads = {max_threads};
  }
  bool first_churn = true;
  for (const std::size_t live : churn_live) {
    for (const double div : churn_rate_div) {
      const double rate = static_cast<double>(live) / div;
      for (const StepMode mode : churn_modes) {
        for (const std::size_t threads : churn_threads) {
          const ChurnPoint p =
              run_churn_point(detector, live, rate, threads, mode, smoke);
          if (!first_churn) json += ",\n";
          first_churn = false;
          char buf[384];
          std::snprintf(
              buf, sizeof(buf),
              "    {\"target_live\": %zu, \"arrival_rate\": %.1f, "
              "\"threads\": %zu, \"mode\": \"%s\", \"ns_per_epoch\": %.1f, "
              "\"ns_per_proc_epoch\": %.1f, \"mean_live\": %.1f, "
              "\"admissions_per_epoch\": %.2f, \"exits_per_epoch\": %.2f}",
              p.target_live, p.arrival_rate, p.threads, mode_name(p.mode),
              p.ns_per_epoch, p.ns_per_proc_epoch, p.mean_live,
              p.admissions_per_epoch, p.exits_per_epoch);
          json += buf;
          std::printf(
              "churn live=%zu rate=%.1f/epoch threads=%zu %s: %.0f ns/epoch  "
              "%.1f ns/proc/epoch  mean_live %.0f  %.2f admissions/epoch  "
              "%.2f exits/epoch\n",
              p.target_live, p.arrival_rate, p.threads, mode_name(p.mode),
              p.ns_per_epoch, p.ns_per_proc_epoch, p.mean_live,
              p.admissions_per_epoch, p.exits_per_epoch);
        }
      }
    }
  }
  sample_section_rss("churn");
  json += "\n  ],\n  \"snapshot\": [\n";

  // Snapshot cost model: capture (engine-thread, synchronous), encode
  // (Snapshotter worker), artifact size, restore (parse + rebuild).
  std::vector<std::size_t> snapshot_live = {1024, 4096};
  if (smoke) snapshot_live = {1024};
  bool first_snap = true;
  for (const std::size_t live : snapshot_live) {
    const SnapshotPoint p = run_snapshot_point(detector, live, smoke);
    if (!first_snap) json += ",\n";
    first_snap = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"processes\": %zu, \"capture_us\": %.1f, "
                  "\"encode_us\": %.1f, \"restore_us\": %.1f, "
                  "\"bytes\": %zu}",
                  p.processes, p.capture_us, p.encode_us, p.restore_us,
                  p.bytes);
    json += buf;
    std::printf(
        "snapshot %4zu live: capture %.1f us  encode %.1f us  "
        "restore %.1f us  %zu bytes\n",
        p.processes, p.capture_us, p.encode_us, p.restore_us, p.bytes);
  }

  sample_section_rss("snapshot");
  json += "\n  ],\n  \"batch_kernels\": [\n";

  const std::vector<KernelRow> kernels = run_batch_kernels(smoke);
  bool first_kernel = true;
  for (const KernelRow& row : kernels) {
    if (!first_kernel) json += ",\n";
    first_kernel = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"detector\": \"%s\", \"batch\": %zu, "
                  "\"scalar_ns_per_item\": %.1f, \"batch_ns_per_item\": %.1f, "
                  "\"speedup\": %.2f}",
                  row.detector, row.batch, row.scalar_ns, row.batch_ns,
                  row.speedup);
    json += buf;
    std::printf("kernel %s batch=%zu: scalar %.1f ns/item  batch %.1f "
                "ns/item  speedup %.2fx\n",
                row.detector, row.batch, row.scalar_ns, row.batch_ns,
                row.speedup);
  }
  sample_section_rss("batch_kernels");
  json += "\n  ],\n  \"sim_breakdown\": [\n";

  // Component map of one simulated epoch: each row times one stage in
  // isolation at the same population, so a reader can see which stage the
  // perf options attack and which stage is the next floor.
  {
    const std::vector<BreakdownRow> rows = run_sim_breakdown(detector, smoke);
    bool first_row = true;
    for (const BreakdownRow& row : rows) {
      if (!first_row) json += ",\n";
      first_row = false;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    {\"component\": \"%s\", \"ns_per_proc\": %.2f}",
                    row.component, row.ns_per_proc);
      json += buf;
      std::printf("sim_breakdown %-22s %8.2f ns/proc\n", row.component,
                  row.ns_per_proc);
    }
  }
  sample_section_rss("sim_breakdown");
  json += "\n  ],\n  \"sim_fast\": [\n";

  // The sim-floor A/B: stock system vs the bit-exact perf configuration
  // (plane fold + counter RNG + bounded ring) vs perf + the fast inference
  // tier, single-thread batched so the per-process floor is what's timed.
  {
    std::vector<std::size_t> fast_procs = {1024, 4096};
    if (smoke) fast_procs = {256};
    ml::MlpDetector fast_detector = bench::engine_bench_detector();
    fast_detector.set_tier(ml::InferenceTier::kFast);
    bool first_row = true;
    for (const std::size_t processes : fast_procs) {
      const SimFastTriple t =
          run_sim_fast(detector, fast_detector, processes, smoke);
      const SimFastRow rows[] = {
          {"baseline", processes, t.baseline_ns, 1.0},
          {"perf_exact", processes, t.exact_ns, 0.0},
          {"perf_fast", processes, t.fast_ns, 0.0},
      };
      for (const SimFastRow& row : rows) {
        const double speedup = row.ns_per_proc_epoch > 0.0
                                   ? rows[0].ns_per_proc_epoch /
                                         row.ns_per_proc_epoch
                                   : 0.0;
        if (!first_row) json += ",\n";
        first_row = false;
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      "    {\"config\": \"%s\", \"processes\": %zu, "
                      "\"ns_per_proc_epoch\": %.1f, \"speedup\": %.2f}",
                      row.config, row.processes, row.ns_per_proc_epoch,
                      speedup);
        json += buf;
        std::printf("sim_fast %-10s procs=%zu: %.1f ns/proc/epoch  %.2fx\n",
                    row.config, row.processes, row.ns_per_proc_epoch, speedup);
      }
    }
  }
  sample_section_rss("sim_fast");
  json += "\n  ],\n  \"fast_tier_efficacy\": [\n";

  // Detection-efficacy cost of the fast tier, fig. 1 style: accuracy vs
  // window length for both tiers on boundary-blended signatures. The delta
  // column is the number a deployment weighs against the speedup.
  {
    const std::vector<EfficacyRow> rows = run_tier_efficacy(smoke);
    bool first_row = true;
    for (const EfficacyRow& row : rows) {
      if (!first_row) json += ",\n";
      first_row = false;
      char buf[224];
      std::snprintf(buf, sizeof(buf),
                    "    {\"window\": %zu, \"exact_accuracy\": %.4f, "
                    "\"fast_accuracy\": %.4f, \"delta\": %.4f}",
                    row.window, row.exact_accuracy, row.fast_accuracy,
                    row.fast_accuracy - row.exact_accuracy);
      json += buf;
      std::printf(
          "fast_tier_efficacy window=%-3zu exact %.4f  fast %.4f  "
          "delta %+.4f\n",
          row.window, row.exact_accuracy, row.fast_accuracy,
          row.fast_accuracy - row.exact_accuracy);
    }
  }
  sample_section_rss("fast_tier_efficacy");
  json += "\n  ],\n  \"faults\": [\n";

  // Fault-plane cost model: hardened-path overhead against baseline, then
  // real sensor-fault traffic, the chaos churn point, and one timed
  // crash-recovery cycle.
  {
    const std::size_t fault_procs = smoke ? 256 : 1024;
    const std::size_t fault_threads = max_threads;
    const StepMode fault_mode = StepMode::kBatched;

    fault::FaultPlane idle(0xbe9c);
    fault::FaultPlane sensor1(0xbe9c);
    sensor1.sensor = {.dropout_rate = 0.004,
                      .stuck_rate = 0.002,
                      .nan_rate = 0.002,
                      .saturate_rate = 0.002};
    fault::FaultPlane sensor10(0xbe9c);
    sensor10.sensor = {.dropout_rate = 0.04,
                       .stuck_rate = 0.02,
                       .nan_rate = 0.02,
                       .saturate_rate = 0.02};
    struct OverheadRow {
      const char* scenario;
      const fault::FaultPlane* plane;
    };
    const OverheadRow overhead_rows[] = {{"baseline", nullptr},
                                         {"armed_idle", &idle},
                                         {"sensor_1pct", &sensor1},
                                         {"sensor_10pct", &sensor10}};
    double baseline_ns = 0.0;
    bool first_fault = true;
    for (const OverheadRow& row : overhead_rows) {
      core::ValkyrieEngine::FaultHealth health{};
      const double ns =
          run_fault_ns(detector, row.plane, fault_procs, fault_threads,
                       fault_mode, smoke, &health);
      if (row.plane == nullptr) baseline_ns = ns;
      const double overhead =
          baseline_ns > 0.0 ? ns / baseline_ns - 1.0 : 0.0;
      if (!first_fault) json += ",\n";
      first_fault = false;
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"scenario\": \"%s\", \"processes\": %zu, \"threads\": %zu, "
          "\"mode\": \"%s\", \"ns_per_proc_epoch\": %.1f, "
          "\"overhead_pct\": %.1f, \"coasted\": %llu, \"blind\": %llu}",
          row.scenario, fault_procs, fault_threads, mode_name(fault_mode),
          ns / static_cast<double>(fault_procs), overhead * 100.0,
          static_cast<unsigned long long>(health.coasted),
          static_cast<unsigned long long>(health.blind));
      json += buf;
      std::printf(
          "faults %-12s procs=%zu threads=%zu %s: %.1f ns/proc/epoch  "
          "overhead %+.1f%%  coasted %llu  blind %llu\n",
          row.scenario, fault_procs, fault_threads, mode_name(fault_mode),
          ns / static_cast<double>(fault_procs), overhead * 100.0,
          static_cast<unsigned long long>(health.coasted),
          static_cast<unsigned long long>(health.blind));
    }

    // Chaos churn: all three fault planes armed over the open-population
    // driver, detector faults injected through the FaultyDetector wrapper.
    // Runs under --smoke too — CI's chaos smoke point.
    fault::FaultPlane chaos(0xc4a05);
    chaos.sensor = {.dropout_rate = 0.005,
                    .stuck_rate = 0.003,
                    .nan_rate = 0.002,
                    .saturate_rate = 0.002};
    chaos.detector = {.throw_rate = 0.005, .garbage_rate = 0.005};
    chaos.actuator = {.transient_rate = 0.02, .permanent_rate = 0.01};
    const fault::FaultyDetector faulty(detector, chaos);
    const ChurnPoint cp = run_churn_point(faulty, 1024, 16.0, max_threads,
                                          fault_mode, smoke, &chaos);
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        ",\n    {\"scenario\": \"faulted_churn\", \"target_live\": %zu, "
        "\"arrival_rate\": %.1f, \"threads\": %zu, \"mode\": \"%s\", "
        "\"ns_per_epoch\": %.1f, \"ns_per_proc_epoch\": %.1f, "
        "\"mean_live\": %.1f}",
        cp.target_live, cp.arrival_rate, cp.threads, mode_name(cp.mode),
        cp.ns_per_epoch, cp.ns_per_proc_epoch, cp.mean_live);
    json += buf;
    std::printf(
        "faults faulted_churn live=%zu threads=%zu %s: %.0f ns/epoch  "
        "%.1f ns/proc/epoch  mean_live %.0f\n",
        cp.target_live, cp.threads, mode_name(cp.mode), cp.ns_per_epoch,
        cp.ns_per_proc_epoch, cp.mean_live);

    const RecoveryPoint rp =
        run_recovery_point(detector, smoke ? 256 : 1024, smoke);
    std::snprintf(
        buf, sizeof(buf),
        ",\n    {\"scenario\": \"recovery\", \"processes\": %zu, "
        "\"replay_epochs\": %llu, \"step_us\": %.1f, \"recovery_us\": %.1f}",
        rp.processes, static_cast<unsigned long long>(rp.replay_epochs),
        rp.step_us, rp.recovery_us);
    json += buf;
    std::printf(
        "faults recovery procs=%zu: replay %llu epochs  step %.1f us  "
        "recovery %.1f us\n",
        rp.processes, static_cast<unsigned long long>(rp.replay_epochs),
        rp.step_us, rp.recovery_us);
  }
  sample_section_rss("faults");
  json += "\n  ],\n  \"mttr\": [\n";

  // The priced MTTR curve: checkpoint cadence x domain-burst severity over
  // a fixed crash schedule. Severity stresses the degraded-inference load
  // the replays run under; the interval buys replay distance down.
  {
    fault::FaultPlane mild(0xbe9c);
    mild.sensor = {.dropout_rate = 0.004,
                   .stuck_rate = 0.002,
                   .nan_rate = 0.002,
                   .saturate_rate = 0.002};
    mild.sensor.feature_fraction = 0.4;
    mild.domains = {.domain_count = 4,
                    .node_width = 8,
                    .sensor_outage_rate = 0.01,
                    .actuator_outage_rate = 0.005,
                    .mean_outage_epochs = 4.0};
    fault::FaultPlane harsh(0xbe9c);
    harsh.sensor = mild.sensor;
    harsh.domains = {.domain_count = 4,
                     .node_width = 8,
                     .sensor_outage_rate = 0.05,
                     .actuator_outage_rate = 0.02,
                     .mean_outage_epochs = 8.0};
    struct SeverityRow {
      const char* name;
      const fault::FaultPlane* plane;
    };
    const SeverityRow severities[] = {{"mild", &mild}, {"harsh", &harsh}};
    const std::uint64_t intervals[] = {4, 16, 64, 256};
    bool first_mttr = true;
    for (const SeverityRow& severity : severities) {
      for (const std::uint64_t interval : intervals) {
        const MttrPoint mp =
            run_mttr_point(detector, *severity.plane, interval, smoke);
        if (!first_mttr) json += ",\n";
        first_mttr = false;
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"interval\": %llu, \"severity\": \"%s\", "
            "\"checkpoints\": %llu, \"recoveries\": %llu, "
            "\"mean_replay_epochs\": %.1f, \"worst_replay_epochs\": %llu, "
            "\"campaign_ms\": %.1f, \"mean_recovery_us\": %.1f}",
            static_cast<unsigned long long>(mp.interval), severity.name,
            static_cast<unsigned long long>(mp.checkpoints),
            static_cast<unsigned long long>(mp.recoveries), mp.mean_replay,
            static_cast<unsigned long long>(mp.worst_replay), mp.campaign_ms,
            mp.mean_recovery_us);
        json += buf;
        std::printf(
            "mttr interval=%-3llu %-5s: checkpoints %llu  "
            "mean replay %.1f  worst %llu  campaign %.1f ms  "
            "recovery %.1f us\n",
            static_cast<unsigned long long>(mp.interval), severity.name,
            static_cast<unsigned long long>(mp.checkpoints), mp.mean_replay,
            static_cast<unsigned long long>(mp.worst_replay), mp.campaign_ms,
            mp.mean_recovery_us);
      }
    }
  }
  sample_section_rss("mttr");
  json += "\n  ],\n  \"pid_scale\": [\n";

  // The million-pid proof: open-population churn through `total` pids with
  // a small live set and full cold-row reclamation. A flat table is one
  // whose steady-state peak RSS and ns/proc/epoch match the end-of-run
  // values; the lookup rows record what the hashed port costs (and buys)
  // per access against the dense table it replaced.
  {
    std::vector<std::size_t> scale_live = {4096, 65536};
    std::uint64_t scale_total = 10'000'000;
    if (smoke) {
      scale_live = {1024};
      scale_total = 60'000;
    }
    bool first_scale = true;
    for (const std::size_t live : scale_live) {
      const PidScalePoint p = run_pid_scale_point(live, scale_total, smoke);
      if (!first_scale) json += ",\n";
      first_scale = false;
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"kind\": \"churn\", \"target_live\": %zu, \"spawned\": %llu, "
          "\"ns_per_proc_epoch_early\": %.1f, \"ns_per_proc_epoch_late\": "
          "%.1f, \"steady_peak_rss_kb\": %ld, \"end_peak_rss_kb\": %ld, "
          "\"end_current_rss_kb\": %ld, \"tracked_end\": %zu, "
          "\"pid_table_capacity\": %zu, \"cold_rows\": %zu, "
          "\"sched_table_capacity\": %zu}",
          p.target_live, static_cast<unsigned long long>(p.spawned),
          p.early_ns_per_proc_epoch, p.late_ns_per_proc_epoch,
          p.steady_peak_rss_kb, p.end_peak_rss_kb, p.end_current_rss_kb,
          p.tracked_end, p.pid_table_capacity, p.cold_rows,
          p.sched_table_capacity);
      json += buf;
      std::printf(
          "pid_scale live=%zu spawned=%llu: early %.1f late %.1f "
          "ns/proc/epoch  peak rss %ld -> %ld kB  tracked %zu  "
          "pid table cap %zu  cold rows %zu  sched cap %zu\n",
          p.target_live, static_cast<unsigned long long>(p.spawned),
          p.early_ns_per_proc_epoch, p.late_ns_per_proc_epoch,
          p.steady_peak_rss_kb, p.end_peak_rss_kb, p.tracked_end,
          p.pid_table_capacity, p.cold_rows, p.sched_table_capacity);
    }
    std::vector<std::size_t> lookup_live = {4096, 65536};
    std::uint64_t lookup_space = 10'000'000;
    if (smoke) {
      lookup_live = {4096};
      lookup_space = 1'000'000;
    }
    for (const std::size_t live : lookup_live) {
      const PidLookupPoint p = run_pid_lookup_point(live, lookup_space, smoke);
      // The headline ratio is batched-find_many against the DENSE
      // pid-indexed vector the tables used to be — the baseline the
      // refactor replaced (and whose O(pid_space) footprint it rejects).
      // batched_vs_scalar is the prefetch lookahead's own contribution;
      // on a table small enough to sit in L1/L2 it hovers near (or below)
      // 1.0, and grows with the working set as probes start missing.
      const double batched_speedup =
          p.batched_ns > 0.0 ? p.dense_ns / p.batched_ns : 0.0;
      const double batched_vs_scalar =
          p.batched_ns > 0.0 ? p.scalar_ns / p.batched_ns : 0.0;
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          ",\n    {\"kind\": \"lookup\", \"live\": %zu, \"pid_space\": %llu, "
          "\"dense_ns\": %.2f, \"scalar_ns\": %.2f, \"batched_ns\": %.2f, "
          "\"batched_speedup\": %.2f, \"batched_vs_scalar\": %.2f, "
          "\"dense_bytes\": %zu, \"map_bytes\": %zu}",
          p.live, static_cast<unsigned long long>(p.pid_space), p.dense_ns,
          p.scalar_ns, p.batched_ns, batched_speedup, batched_vs_scalar,
          p.dense_bytes, p.map_bytes);
      json += buf;
      std::printf(
          "pid_scale lookup live=%zu space=%llu: dense %.2f  scalar %.2f  "
          "batched %.2f ns/lookup  batched %.2fx vs dense (%.2fx vs scalar)  "
          "dense %zu bytes  map %zu bytes\n",
          p.live, static_cast<unsigned long long>(p.pid_space), p.dense_ns,
          p.scalar_ns, p.batched_ns, batched_speedup, batched_vs_scalar,
          p.dense_bytes, p.map_bytes);
    }
  }
  sample_section_rss("pid_scale");
  json += "\n  ],\n  \"rss_sections\": [\n";
  {
    bool first_rss = true;
    for (const auto& [section, rss] : rss_sections) {
      if (!first_rss) json += ",\n";
      first_rss = false;
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "    {\"section\": \"%s\", \"peak_rss_kb\": %ld, "
                    "\"current_rss_kb\": %ld}",
                    section, rss.peak_kb, rss.current_kb);
      json += buf;
    }
  }
  json += "\n  ]\n}\n";

  if (!JsonChecker(json).valid()) {
    std::fprintf(stderr, "emitted JSON failed well-formedness check\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
