// Penalty and compensation assessment functions (paper §V-A).
//
// Valkyrie's threat index grows by a penalty value on every malicious
// inference and shrinks by a compensation value on benign inferences in the
// suspicious state. Both metrics evolve through configurable assessment
// functions F(previous) -> next; the paper names incremental, linear and
// exponential realisations, all clamped to [0, 100].
#pragma once

#include <functional>

namespace valkyrie::core {

/// An assessment function maps the previous penalty/compensation value to
/// the next one. The caller clamps the result to [0, 100].
using AssessmentFn = std::function<double(double)>;

/// The paper's clamp(): restricts penalty, compensation and threat index
/// to [0, 100].
[[nodiscard]] constexpr double clamp_metric(double x) noexcept {
  return x < 0.0 ? 0.0 : (x > 100.0 ? 100.0 : x);
}

/// Incremental: F(x) = x + step (paper default, step = 1).
[[nodiscard]] AssessmentFn incremental(double step = 1.0);

/// Linear: F(x) = a*x + b.
[[nodiscard]] AssessmentFn linear(double a, double b);

/// Exponential: F(x) = factor*x + step — doubles (etc.) the metric each
/// hit, for aggressive escalation.
[[nodiscard]] AssessmentFn exponential(double factor = 2.0, double step = 1.0);

/// Constant: F(x) = value, for a fixed per-epoch penalty/compensation.
[[nodiscard]] AssessmentFn constant(double value);

}  // namespace valkyrie::core
