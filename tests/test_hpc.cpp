#include <gtest/gtest.h>

#include <cmath>

#include "hpc/hpc.hpp"
#include "util/stats.hpp"

namespace valkyrie::hpc {
namespace {

HpcSignature flat_signature(double value) {
  HpcSignature s;
  for (double& m : s.mean) m = value;
  s.correlated_noise = 0.0;  // tests control each noise source explicitly
  return s;
}

TEST(Hpc, EventNamesAreDistinct) {
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    for (std::size_t j = i + 1; j < kNumEvents; ++j) {
      EXPECT_NE(event_name(static_cast<Event>(i)),
                event_name(static_cast<Event>(j)));
    }
  }
}

TEST(Hpc, SampleScalesWithActivity) {
  HpcSignature s = flat_signature(1000.0);
  s.rel_stddev = 0.0;  // deterministic
  util::Rng rng(1);
  const HpcSample full = s.sample(rng, 1.0);
  const HpcSample half = s.sample(rng, 0.5);
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    EXPECT_DOUBLE_EQ(full.counts[i], 1000.0);
    EXPECT_DOUBLE_EQ(half.counts[i], 500.0);
  }
}

TEST(Hpc, SampleNoiseHasConfiguredSpread) {
  HpcSignature s = flat_signature(1000.0);
  s.rel_stddev = 0.1;
  util::Rng rng(2);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(s.sample(rng)[Event::kInstructions]);
  }
  EXPECT_NEAR(stats.mean(), 1000.0, 10.0);
  EXPECT_NEAR(stats.stddev(), 100.0, 10.0);
}

TEST(Hpc, NoiseScaleMultiplies) {
  HpcSignature s = flat_signature(1000.0);
  s.rel_stddev = 0.1;
  util::Rng rng(3);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(s.sample(rng, 1.0, 2.0)[Event::kCycles]);
  }
  EXPECT_NEAR(stats.stddev(), 200.0, 20.0);
}

TEST(Hpc, SamplesNeverNegative) {
  HpcSignature s = flat_signature(1.0);
  s.rel_stddev = 5.0;  // extreme noise
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const HpcSample sample = s.sample(rng);
    for (const double c : sample.counts) EXPECT_GE(c, 0.0);
  }
}

TEST(Hpc, CorrelatedNoiseMovesMissEventsTogetherAgainstIpc) {
  // One interference draw per epoch: the miss-type events shift by the
  // same ratio while instructions move the opposite way and the cycle
  // count stays put.
  HpcSignature s = flat_signature(1000.0);
  s.correlated_noise = 0.3;
  s.rel_stddev = 0.0;
  util::Rng rng(6);
  bool saw_shift = false;
  for (int i = 0; i < 50; ++i) {
    const HpcSample sample = s.sample(rng);
    const double miss_ratio = sample[Event::kL1dMisses] / 1000.0;
    EXPECT_NEAR(sample[Event::kLlcMisses] / 1000.0, miss_ratio, 1e-9);
    EXPECT_NEAR(sample[Event::kBranchMisses] / 1000.0, miss_ratio, 1e-9);
    EXPECT_DOUBLE_EQ(sample[Event::kCycles], 1000.0);
    if (miss_ratio > 1.05) {
      EXPECT_LT(sample[Event::kInstructions], 1000.0);
      saw_shift = true;
    }
  }
  EXPECT_TRUE(saw_shift);
}

TEST(Hpc, ZeroMeanStaysZero) {
  HpcSignature s;  // all means zero
  util::Rng rng(5);
  const HpcSample sample = s.sample(rng);
  for (const double c : sample.counts) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Hpc, FeaturesAreLog1pRatesPerMegacycle) {
  HpcSample sample;
  sample[Event::kCycles] = 1e6;
  sample[Event::kInstructions] = std::exp(1.0) - 1.0;
  const FeatureVec f = to_features(sample);
  ASSERT_EQ(f.size(), kFeatureDim);
  EXPECT_NEAR(f[static_cast<std::size_t>(Event::kInstructions)], 1.0, 1e-12);
  // The cycles slot carries no scheduling-share information.
  EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Event::kCycles)], 0.0);
}

TEST(Hpc, FeaturesInvariantToSchedulingShare) {
  // A throttled epoch (all counts scaled by the granted CPU share) must
  // produce the same feature vector — the detector sees behaviour, not
  // the response's own throttling.
  HpcSample full;
  full[Event::kCycles] = 3.5e8;
  full[Event::kInstructions] = 7e8;
  full[Event::kL1dMisses] = 2e6;
  HpcSample throttled = full;
  for (double& c : throttled.counts) c *= 0.01;
  const FeatureVec f_full = to_features(full);
  const FeatureVec f_thr = to_features(throttled);
  for (std::size_t i = 0; i < kFeatureDim; ++i) {
    EXPECT_NEAR(f_full[i], f_thr[i], 1e-6) << "feature " << i;
  }
}

TEST(Hpc, IndexOperatorReadsWrites) {
  HpcSample sample;
  sample[Event::kLlcMisses] = 42.0;
  EXPECT_DOUBLE_EQ(sample[Event::kLlcMisses], 42.0);
}

}  // namespace
}  // namespace valkyrie::hpc
