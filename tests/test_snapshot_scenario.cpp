// Crash-fault injection over full scenario campaigns: a ScenarioDriver run
// that is killed and restored from its snapshot at randomized epoch
// boundaries — including mid-campaign, with scheduled kills pending in the
// departure heap — must finish in a state byte-identical to the
// uninterrupted golden run. Also covers the Snapshotter worker (off-thread
// encoding) and the driver restore constructor's compatibility guards.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/valkyrie.hpp"
#include "ml/svm.hpp"
#include "sim/fault_injector.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshotter.hpp"
#include "util/rng.hpp"

namespace valkyrie::sim {
namespace {

using core::ValkyrieEngine;
using util::SerialError;

ml::TraceSet training_corpus() {
  util::Rng rng(0xc0ffee);
  hpc::HpcSignature benign;
  benign.at(hpc::Event::kInstructions) = 3e8;
  benign.at(hpc::Event::kCycles) = 3.5e8;
  benign.at(hpc::Event::kMemBandwidth) = 5e7;
  hpc::HpcSignature attack;
  attack.at(hpc::Event::kInstructions) = 4e7;
  attack.at(hpc::Event::kLlcMisses) = 4e7;
  attack.at(hpc::Event::kMemBandwidth) = 2e9;
  ml::TraceSet set;
  for (int label = 0; label < 2; ++label) {
    for (int t = 0; t < 6; ++t) {
      ml::LabeledTrace trace;
      trace.malicious = label == 1;
      trace.name = std::to_string(label) + "-" + std::to_string(t);
      for (int i = 0; i < 25; ++i) {
        trace.samples.push_back((label == 1 ? attack : benign).sample(rng));
      }
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

/// A churn-heavy script whose campaigns straddle the crash region:
/// staggered ransomware + cryptominer waves are still arriving while the
/// injector kills the run, and finite lifetimes keep the departure heap
/// populated at every boundary.
ScenarioScript churn_script() {
  ScenarioScript script;
  script.seed = 0x5ca1e;
  script.initial_processes = 12;
  script.arrival_rate = 0.4;
  script.attack_fraction = 0.15;
  script.attack_families = {AttackFamily::kCryptominer,
                            AttackFamily::kRansomware,
                            AttackFamily::kExfiltrator};
  script.mean_lifetime = 60.0;
  script.kill_exit_fraction = 0.6;
  script.bursts = {{40, 4}, {170, 3}};
  script.campaigns = {{80, 6, 15, AttackFamily::kRansomware},
                      {120, 5, 20, AttackFamily::kCryptominer}};
  return script;
}

constexpr std::size_t kEpochs = 260;

FaultInjector::RunFactory make_factory(const ml::SvmDetector& detector,
                                       std::size_t threads,
                                       ValkyrieEngine::StepMode mode) {
  return [&detector, threads,
          mode](const snapshot::SnapshotImage* image) -> FaultInjector::Run {
    FaultInjector::Run run;
    run.sys = std::make_unique<SimSystem>();
    run.engine =
        std::make_unique<ValkyrieEngine>(*run.sys, detector, threads, mode);
    if (image == nullptr) {
      run.driver =
          std::make_unique<ScenarioDriver>(*run.engine, churn_script());
    } else {
      snapshot::restore(*image, *run.engine, snapshot::RestoreContext{});
      run.driver = std::make_unique<ScenarioDriver>(
          *run.engine, churn_script(), image->driver);
    }
    return run;
  };
}

TEST(SnapshotScenario, CrashedAndRestoredCampaignMatchesGoldenRun) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);

  // Golden: the uninterrupted run.
  std::vector<std::uint8_t> golden;
  ScenarioDriver::Stats golden_stats{};
  {
    FaultInjector::Run run = make_factory(detector, 2,
                                          ValkyrieEngine::StepMode::kFused)(
        nullptr);
    for (std::size_t i = 0; i < kEpochs; ++i) run.driver->step();
    golden = snapshot::encode(snapshot::capture(*run.driver));
    golden_stats = run.driver->stats();
  }
  ASSERT_GT(golden_stats.attack_spawned, 10u)
      << "campaigns must actually have injected attacks";
  ASSERT_GT(golden_stats.driver_kills, 0u);

  // Crash at 3 randomized boundaries (seed-deterministic), mid-campaign.
  for (const std::uint64_t seed : {0x1dea5ULL, 0xbeefULL}) {
    FaultInjector injector(
        make_factory(detector, 2, ValkyrieEngine::StepMode::kFused), seed);
    const FaultInjector::Report report = injector.run(kEpochs, 3);
    EXPECT_EQ(report.crashes, 3u);
    ASSERT_EQ(report.crash_epochs.size(), 3u);
    EXPECT_EQ(golden, report.final_snapshot)
        << "seed " << seed << ": crashed run diverged from golden";
  }

  // And across engine configurations: a run crashed under one StepMode /
  // worker count and restored under another still matches.
  {
    FaultInjector injector(
        make_factory(detector, 8, ValkyrieEngine::StepMode::kBatched),
        0x77aa);
    const FaultInjector::Report report = injector.run(kEpochs, 2);
    EXPECT_EQ(golden, report.final_snapshot);
  }
}

TEST(SnapshotScenario, DriverRestoreGuardsScriptAndProgress) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  SimSystem sys;
  ValkyrieEngine engine(sys, detector, 1, ValkyrieEngine::StepMode::kFused);
  ScenarioDriver driver(engine, churn_script());
  for (int i = 0; i < 60; ++i) driver.step();
  const snapshot::SnapshotImage image = snapshot::capture(driver);
  ASSERT_TRUE(image.has_driver);

  SimSystem sys2;
  ValkyrieEngine engine2(sys2, detector, 1, ValkyrieEngine::StepMode::kFused);
  snapshot::restore(image, engine2, snapshot::RestoreContext{});

  // A script whose data fields differ must be refused (it is code the
  // snapshot only fingerprints).
  {
    ScenarioScript edited = churn_script();
    edited.arrival_rate += 0.1;
    try {
      ScenarioDriver bad(engine2, edited, image.driver);
      FAIL() << "driver restore accepted an edited script";
    } catch (const SerialError& e) {
      EXPECT_EQ(e.code(), SerialError::Code::kIncompatible);
    }
  }

  // The matching script resumes and replays bit-identically.
  ScenarioDriver restored(engine2, churn_script(), image.driver);
  EXPECT_EQ(driver.stats().spawned, restored.stats().spawned);
  for (int i = 0; i < 40; ++i) {
    driver.step();
    restored.step();
  }
  EXPECT_EQ(snapshot::encode(snapshot::capture(driver)),
            snapshot::encode(snapshot::capture(restored)));
}

TEST(SnapshotScenario, SnapshotterEncodesOffThreadInRequestOrder) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  SimSystem sys;
  ValkyrieEngine engine(sys, detector, 2, ValkyrieEngine::StepMode::kFused);
  ScenarioDriver driver(engine, churn_script());

  std::mutex mutex;
  std::vector<std::vector<std::uint8_t>> delivered;
  snapshot::Snapshotter snapshotter(
      [&mutex, &delivered](std::vector<std::uint8_t> bytes) {
        const std::lock_guard<std::mutex> lock(mutex);
        delivered.push_back(std::move(bytes));
      });

  std::vector<std::uint64_t> epochs;
  for (int i = 0; i < 80; ++i) {
    driver.step();
    if (i % 16 == 7) {
      snapshotter.request(driver);
      epochs.push_back(sys.current_epoch());
    }
  }
  snapshotter.flush();
  EXPECT_EQ(snapshotter.completed(), epochs.size());

  const std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(delivered.size(), epochs.size());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    const snapshot::SnapshotImage image = snapshot::parse(delivered[i]);
    EXPECT_EQ(image.system.epoch, epochs[i]) << "snapshot " << i;
    EXPECT_TRUE(image.has_driver);
  }

  // The captured state is restorable: rebuild from the LAST delivery and
  // continue in lockstep with the original.
  const snapshot::SnapshotImage last = snapshot::parse(delivered.back());
  SimSystem sys2;
  ValkyrieEngine engine2(sys2, detector, 2, ValkyrieEngine::StepMode::kFused);
  snapshot::restore(last, engine2, snapshot::RestoreContext{});
  ScenarioDriver restored(engine2, churn_script(), last.driver);
  // The original driver is ahead (it kept stepping after the request);
  // catch the restored one up to the same epoch first.
  while (sys2.current_epoch() < sys.current_epoch()) restored.step();
  EXPECT_EQ(snapshot::encode(snapshot::capture(driver)),
            snapshot::encode(snapshot::capture(restored)));
}

}  // namespace
}  // namespace valkyrie::sim
