// Labeled HPC traces for training and evaluating detectors.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hpc/hpc.hpp"
#include "util/rng.hpp"

namespace valkyrie::ml {

/// One program execution: the sequence of per-epoch HPC samples plus the
/// ground-truth label.
struct LabeledTrace {
  std::string name;
  std::vector<hpc::HpcSample> samples;
  bool malicious = false;
};

struct TraceSet {
  std::vector<LabeledTrace> traces;

  [[nodiscard]] std::size_t count_malicious() const noexcept;
  [[nodiscard]] std::size_t count_benign() const noexcept;
};

/// A flat per-measurement example (for SVM / GBT, which classify each
/// measurement individually and majority-vote).
struct Example {
  std::vector<double> features;
  bool malicious = false;
};

/// Flattens traces into per-measurement examples using hpc::to_features.
[[nodiscard]] std::vector<Example> flatten(const TraceSet& set);

/// Shuffles examples in place (training order).
void shuffle(std::vector<Example>& examples, util::Rng& rng);

/// Splits a trace set into train/test by trace (not by sample), keeping
/// `train_fraction` of each class in the training half. Takes the set by
/// value and moves every trace into one of the halves — pass std::move(set)
/// to avoid copying trace samples, or an lvalue to keep the source intact.
struct TraceSplit {
  TraceSet train;
  TraceSet test;
};
[[nodiscard]] TraceSplit split_traces(TraceSet set, double train_fraction,
                                      util::Rng& rng);

}  // namespace valkyrie::ml
