#include "attacks/cryptominer.hpp"

#include <algorithm>
#include <cmath>

#include "attacks/signatures.hpp"
#include "sim/resources.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace valkyrie::attacks {

CryptominerAttack::CryptominerAttack(CryptominerConfig config)
    : config_(std::move(config)),
      signature_(cryptominer_signature(config_.family_jitter, config_.seed)) {}

sim::StepResult CryptominerAttack::run_epoch(const sim::ResourceShares& shares,
                                             sim::EpochContext& ctx) {
  const double epoch_s = ctx.epoch_ms / 1000.0;
  const double s = sim::cpu_progress_multiplier(shares.cpu) *
                   sim::memory_progress_multiplier(shares.mem);
  const double hashes = config_.hashes_per_second * epoch_s * s;

  // Grind a real slice of the nonce space with double SHA-256; shares found
  // in the slice are extrapolated by the accounted/real ratio.
  const int real = std::min(
      config_.real_hashes_per_epoch,
      static_cast<int>(std::ceil(hashes)) );
  std::uint64_t found_in_slice = 0;
  std::uint8_t header[80] = {};
  for (int i = 0; i < real; ++i) {
    ++nonce_;
    for (int b = 0; b < 8; ++b) {
      header[72 + b] = static_cast<std::uint8_t>(nonce_ >> (8 * b));
    }
    const crypto::Sha256Digest digest = crypto::Sha256::hash2({header, 80});
    if (crypto::leading_zero_bits(digest) >= config_.difficulty_bits) {
      ++found_in_slice;
    }
  }
  if (real > 0) {
    shares_found_ += static_cast<std::uint64_t>(
        std::round(static_cast<double>(found_in_slice) * hashes /
                   static_cast<double>(real)));
  }
  hashes_ += hashes;

  sim::StepResult out;
  out.progress = hashes;
  out.hpc = signature_.sample(*ctx.rng, std::max(s, 0.0), ctx.hpc_noise);
  return out;
}

std::vector<CryptominerConfig> cryptominer_corpus(std::uint64_t seed) {
  static constexpr const char* kVariants[] = {
      "xmrig-profile", "cgminer-profile", "webminer-profile",
      "coinhive-profile", "cpuminer-multi",
  };
  util::Rng rng(seed);
  std::vector<CryptominerConfig> corpus;
  int idx = 0;
  for (const char* variant : kVariants) {
    for (int i = 0; i < 4; ++i) {
      CryptominerConfig c;
      c.name = std::string(variant) + "-" + std::to_string(i);
      c.hashes_per_second = 1.8e6 * std::exp(0.15 * rng.normal());
      c.difficulty_bits = 16 + static_cast<int>(rng.below(6));
      c.family_jitter = 0.08;
      c.seed = rng();
      corpus.push_back(std::move(c));
      ++idx;
    }
  }
  (void)idx;
  return corpus;
}



void CryptominerAttack::snapshot_save(util::ByteWriter& out) const {
  out.str(config_.name);
  out.f64(config_.hashes_per_second);
  out.i64(config_.real_hashes_per_epoch);
  out.i64(config_.difficulty_bits);
  out.f64(config_.family_jitter);
  out.u64(config_.seed);
  out.f64(hashes_);
  out.u64(shares_found_);
  out.u64(nonce_);
}

std::unique_ptr<sim::Workload> CryptominerAttack::snapshot_load(
    util::ByteReader& in) {
  CryptominerConfig config;
  config.name = in.str();
  config.hashes_per_second = in.f64();
  config.real_hashes_per_epoch = static_cast<int>(in.i64());
  config.difficulty_bits = static_cast<int>(in.i64());
  config.family_jitter = in.f64();
  config.seed = in.u64();
  auto out = std::make_unique<CryptominerAttack>(std::move(config));
  out->hashes_ = in.f64();
  out->shares_found_ = in.u64();
  out->nonce_ = in.u64();
  return out;
}



}  // namespace valkyrie::attacks
