#include "core/efficacy.hpp"

#include <algorithm>

namespace valkyrie::core {

std::optional<std::size_t> EfficacyCurve::required_measurements(
    const EfficacySpec& spec) const {
  for (const EfficacyPoint& p : points_) {
    const bool f1_ok = !spec.min_f1 || p.f1 >= *spec.min_f1;
    const bool fpr_ok = !spec.max_fpr || p.fpr <= *spec.max_fpr;
    if (f1_ok && fpr_ok) return p.measurements;
  }
  return std::nullopt;
}

EfficacyCurve compute_efficacy_curve(const ml::Detector& detector,
                                     const ml::TraceSet& validation,
                                     std::size_t max_measurements,
                                     std::size_t stride) {
  std::vector<EfficacyPoint> points;
  if (stride == 0) stride = 1;
  for (std::size_t n = 1; n <= max_measurements; n += stride) {
    EfficacyPoint point;
    point.measurements = n;
    for (const ml::LabeledTrace& trace : validation.traces) {
      if (trace.samples.size() < n) continue;
      const std::span<const hpc::HpcSample> prefix(trace.samples.data(), n);
      const bool predicted_malicious =
          detector.infer(prefix) == ml::Inference::kMalicious;
      point.confusion.record(trace.malicious, predicted_malicious);
    }
    point.f1 = point.confusion.f1();
    point.fpr = point.confusion.false_positive_rate();
    points.push_back(point);
  }
  return EfficacyCurve(std::move(points));
}

}  // namespace valkyrie::core
