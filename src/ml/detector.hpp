// The runtime-detector interface Valkyrie augments (paper Fig. 2).
//
// A detector sees the HPC measurement window accumulated for a process so
// far and returns one inference per epoch: D(t, i) in {benign, malicious}.
// Valkyrie is agnostic to what is behind the interface (paper §VII); this
// repository ships a statistical detector, small/large MLPs, a linear SVM,
// gradient-boosted trees and an LSTM behind it.
//
// Two entry points exist because the window grows every epoch:
//
//   infer(span)           — classify from the raw accumulated window; cost
//                           grows with the window for aggregate detectors.
//   infer(WindowSummary)  — classify from streaming statistics maintained
//                           in O(1) per epoch by a WindowAccumulator. The
//                           default adapter falls back to the raw window,
//                           so existing whole-window detectors keep working
//                           unmodified; detectors that can consume the
//                           summary override it and become O(1) per epoch.
//
// Detectors that classify each measurement independently and majority-vote
// (SVM, XGBoost, the statistical detector's accumulated view) additionally
// expose the per-measurement vote, letting the caller maintain running vote
// counts instead of re-scoring the whole window every epoch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "hpc/hpc.hpp"
#include "ml/window_accumulator.hpp"

namespace valkyrie::ml {

/// kInvalid is the sanitized form of a *failed* inference — a detector that
/// threw, returned garbage bits, or was skipped because the slot's telemetry
/// exhausted its staleness budget. It never comes out of a healthy detector:
/// the engine manufactures it so downstream consumers (threat index, monitor
/// plan) can treat "no usable verdict this epoch" as an explicit state
/// instead of silently counting it as benign evidence.
enum class Inference : std::uint8_t { kBenign, kMalicious, kInvalid };

/// Numeric tier a detector's kernels run at. kBitExact (the default,
/// always) calls libm and keeps the repository-wide bit-reproducibility
/// contract: batch == scalar == every previous release, across StepModes
/// and worker counts. kFast swaps the transcendentals for the fast_math
/// approximations (and division for precomputed-reciprocal multiplies where
/// a kernel is divide-bound): still deterministic — the same build produces
/// the same bits on every run, and fast-scalar == fast-batch by the same
/// operation-sequence argument as the exact tier — but NOT bit-identical to
/// the exact tier, so detection decisions may differ near a model's
/// threshold. The accuracy cost is measured, not assumed: BENCH_engine.json
/// A/Bs both tiers including detection-efficacy deltas.
enum class InferenceTier : std::uint8_t { kBitExact, kFast };

/// Feature-major matrix view over a batch of measurement feature vectors:
/// row f holds feature f of every batch item, consecutive items sit in
/// consecutive doubles (unit stride), and consecutive feature rows are
/// `stride` doubles apart. This is the layout SimSystem's feature plane
/// maintains across live slots, and the layout every batch kernel sweeps
/// with SIMD-friendly unit-stride inner loops.
struct FeatureMatrixView {
  const double* features = nullptr;  ///< hpc::kFeatureDim rows x stride
  std::size_t count = 0;             ///< batch items (columns)
  std::size_t stride = 0;            ///< doubles between feature rows

  [[nodiscard]] const double* row(std::size_t f) const noexcept {
    return features + f * stride;
  }

  /// Copies column `c` into a dense feature vector (the scalar adapters'
  /// bridge back to span-of-double detectors).
  void gather(std::size_t c, std::span<double> out) const noexcept {
    for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
      out[f] = features[f * stride + c];
    }
  }

  /// Columns [begin, end) as a view (shard slicing).
  [[nodiscard]] FeatureMatrixView slice(std::size_t begin,
                                        std::size_t end) const noexcept {
    return {features + begin, end - begin, stride};
  }
};

/// Feature-major view over a batch of window summaries: per-feature rows of
/// the newest measurement's features, the running window mean and the
/// running window standard deviation (each hpc::kFeatureDim rows x stride),
/// plus per-column measurement counts and (optionally) the raw accumulated
/// windows for detectors that still need them. Column c is exactly the
/// WindowSummary of batch item c; gather(c) materialises it.
struct SummaryMatrixView {
  const double* newest = nullptr;  ///< features of the newest measurement
  const double* mean = nullptr;    ///< running window mean
  const double* stddev = nullptr;  ///< running window stddev
  const std::size_t* counts = nullptr;  ///< measurements accumulated
  /// Raw accumulated windows, oldest first; null when callers only stream
  /// (the default adapter then hands detectors an empty window, exactly as
  /// WindowAccumulator::summary() with no window argument does).
  const std::span<const hpc::HpcSample>* windows = nullptr;
  /// Wrapped ring tails matching `windows` column for column (see
  /// WindowSummary::window_wrap); null when the producer's histories are
  /// unbounded (every wrap is then empty).
  const std::span<const hpc::HpcSample>* windows_wrap = nullptr;
  std::size_t count = 0;   ///< batch items (columns)
  std::size_t stride = 0;  ///< doubles between feature rows

  /// The newest-measurement rows as a vote-kernel input matrix.
  [[nodiscard]] FeatureMatrixView newest_view() const noexcept {
    return {newest, count, stride};
  }

  /// Materialises column `c` as a scalar WindowSummary (defined after
  /// WindowSummary below; see detector.cpp).
  [[nodiscard]] WindowSummary gather(std::size_t c) const noexcept;

  /// Columns [begin, end) as a view (shard slicing).
  [[nodiscard]] SummaryMatrixView slice(std::size_t begin,
                                        std::size_t end) const noexcept {
    return {newest + begin,
            mean + begin,
            stddev + begin,
            counts + begin,
            windows != nullptr ? windows + begin : nullptr,
            windows_wrap != nullptr ? windows_wrap + begin : nullptr,
            end - begin,
            stride};
  }
};

class Detector {
 public:
  virtual ~Detector() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Classifies a process given every measurement captured for it so far
  /// (oldest first). Called once per epoch with a growing window.
  [[nodiscard]] virtual Inference infer(
      std::span<const hpc::HpcSample> window) const = 0;

  /// Incremental entry point: classifies from the streaming summary of the
  /// accumulated window. The default adapter forwards to the whole-window
  /// overload via summary.window (linearizing the span pair first when the
  /// producer's bounded ring has wrapped — see infer_wrapped); summary-
  /// capable detectors override this and never touch the raw measurements.
  [[nodiscard]] virtual Inference infer(const WindowSummary& summary) const {
    if (summary.window_wrap.empty()) return infer(summary.window);
    return infer_wrapped(summary);
  }

  /// For vote-based detectors: the fraction of per-measurement malicious
  /// votes (strictly) above which the whole window is inferred malicious.
  /// Returning a value promises that infer(window) is equivalent to scoring
  /// each measurement with measurement_vote() and comparing the malicious
  /// fraction against it — which lets callers keep running counts and infer
  /// in O(1) per epoch. Detectors without that structure return nullopt.
  [[nodiscard]] virtual std::optional<double> vote_fraction() const {
    return std::nullopt;
  }

  /// Classifies one measurement (features from hpc::to_features) in
  /// isolation. Only meaningful when vote_fraction() returns a value.
  [[nodiscard]] virtual bool measurement_vote(
      std::span<const double> /*features*/) const {
    return false;
  }

  // --- Batch entry points ----------------------------------------------------
  //
  // One virtual call classifies a whole batch of processes from the
  // feature-major plane instead of one process at a time. The default
  // adapters loop the scalar paths column by column, so every detector —
  // including out-of-tree ones — keeps working unmodified and, critically,
  // BIT-IDENTICALLY: a batch call must produce exactly the bits the scalar
  // loop would. Shipped detectors override them with blocked kernels whose
  // per-column accumulation order matches the scalar path exactly, keeping
  // that promise while the inner loops vectorize across columns.

  /// Batch measurement_vote: out[c] = measurement_vote(column c) as 0/1.
  /// `out.size()` must be >= batch.count. Only meaningful when
  /// vote_fraction() returns a value.
  virtual void measurement_votes(const FeatureMatrixView& batch,
                                 std::span<std::uint8_t> out) const;

  /// Batch infer(WindowSummary): out[c] = infer(batch.gather(c)).
  /// `out.size()` must be >= batch.count.
  virtual void infer_batch(const SummaryMatrixView& batch,
                           std::span<Inference> out) const;

  /// Which feature-plane sections a batched driver must maintain for this
  /// detector, assuming the driver routes like StreamingInference does:
  /// measurement_votes when vote_fraction() returns a value, infer_batch
  /// otherwise (per-column counts are always maintained). Drivers skip
  /// filling the rest — e.g. a pure vote detector never reads the running
  /// mean/stddev rows, so the driver skips 2*kFeatureDim strided stores
  /// AND the kFeatureDim stddev square roots per slot per epoch. The
  /// default (kFull) is what the scalar-looping default adapters may
  /// gather; detectors with narrower batch kernels override it.
  enum class PlaneSections : std::uint8_t {
    kNewestOnly,  // newest-measurement feature rows
    kStatsOnly,   // running mean + stddev rows
    kFull,        // everything, including the raw-window spans
  };
  [[nodiscard]] virtual PlaneSections plane_sections() const {
    return PlaneSections::kFull;
  }

  /// Compatibility fingerprint recorded in snapshots. A restore is refused
  /// (typed kIncompatible error) when the hash recorded at capture time
  /// differs from the target engine's detector — a detector swapped or
  /// retrained between capture and restore would silently break the
  /// bit-replay contract otherwise. The default hashes the name; detectors
  /// with mutable or trained parameters (e.g. the LSTM) override it to
  /// fold in their parameter bits.
  [[nodiscard]] virtual std::uint64_t state_hash() const;

 protected:
  /// Bridge for raw-window detectors handed a wrapped ring window: copies
  /// the span pair into one oldest-first buffer and classifies that. Costs
  /// an allocation, paid only by legacy whole-window detectors under the
  /// (opt-in) bounded-history mode; streaming detectors never get here.
  [[nodiscard]] Inference infer_wrapped(const WindowSummary& summary) const;
};

/// Per-(process, detector) incremental inference state. Routes each epoch's
/// decision through the cheapest path the detector supports:
///
///   - vote-based detectors: fold the newest measurement's vote into running
///     counts and compare fractions — O(1) per epoch;
///   - everything else: hand over the streaming summary (summary-capable
///     detectors are O(1); legacy whole-window detectors fall back to the
///     raw window through the default adapter).
///
/// Catches up from summary.window when attached to a process that already
/// has history, and recounts after a shrink (episode reset).
///
/// One instance serves exactly one (process, detector) pair: progress is
/// tracked by measurement count alone, so pointing an instance at a
/// *different* process whose window is at least as long would silently
/// merge stale votes. Call reset() before reusing an instance.
class StreamingInference {
 public:
  [[nodiscard]] Inference infer(const Detector& detector,
                                const WindowSummary& summary);

  /// True when the instance is exactly one measurement behind `count` —
  /// the common per-epoch step, where a batch-computed vote for the newest
  /// measurement can be folded directly via fold_vote(). Any other
  /// progression (catch-up, shrink, empty window) must go through infer().
  [[nodiscard]] bool can_fold(std::size_t count) const noexcept {
    return counted_ + 1 == count;
  }

  /// Folds one externally-computed vote for the newest measurement (the
  /// batched path's entry point; bit-identical to infer() taking its
  /// one-new-measurement branch with the same vote). Pre: can_fold(count).
  [[nodiscard]] Inference fold_vote(bool malicious_vote, std::size_t count,
                                    double fraction) noexcept {
    if (malicious_vote) ++malicious_;
    counted_ = count;
    return static_cast<double>(malicious_) >
                   fraction * static_cast<double>(counted_)
               ? Inference::kMalicious
               : Inference::kBenign;
  }

  void reset() noexcept {
    malicious_ = 0;
    counted_ = 0;
  }

  /// Marks `count` measurements as observed WITHOUT folding any votes —
  /// the containment hook for a detector that threw mid-scoring. The
  /// faulted measurement(s) enter the vote denominator as non-malicious,
  /// and, crucially, the next epoch's fast path no longer re-walks them:
  /// a deterministic per-measurement fault would otherwise re-throw on the
  /// same feature bits every epoch forever. No-op when already caught up.
  void mark_observed(std::size_t count) noexcept {
    if (count > counted_) counted_ = count;
  }

  /// Running vote counts, for snapshot/restore.
  [[nodiscard]] std::size_t malicious_count() const noexcept {
    return malicious_;
  }
  [[nodiscard]] std::size_t counted() const noexcept { return counted_; }
  void restore(std::size_t malicious, std::size_t counted) noexcept {
    malicious_ = malicious;
    counted_ = counted;
  }

 private:
  std::size_t malicious_ = 0;
  std::size_t counted_ = 0;
};

/// Aggregate feature vector for whole-window models (the ANNs): per-event
/// mean and standard deviation of the log1p features over the window,
/// giving a fixed 2 * kFeatureDim dimensionality regardless of window size.
/// As the window grows these estimates concentrate, which is precisely why
/// detection efficacy rises with measurement count (paper Fig. 1).
///
/// This is the batch (two-pass) computation, used when building training
/// examples; the per-epoch inference path streams the same statistics
/// through a WindowAccumulator instead.
[[nodiscard]] std::vector<double> window_features(
    std::span<const hpc::HpcSample> window);

/// Per-feature standardisation (z-scoring) fit on training data. Neural
/// models need it: raw log1p counts sit around 15-20 and would saturate
/// tanh/sigmoid units from the first step.
class FeatureScaler {
 public:
  /// Learns mean and spread of each feature across the given vectors.
  void fit(std::span<const std::vector<double>> features);

  [[nodiscard]] std::vector<double> transform(
      std::span<const double> features) const;

  /// Allocation-free variant: writes standardised features into `out`
  /// (same length as the input; `out` may alias `features`, so in-place
  /// transformation is `transform(f, f)`).
  void transform(std::span<const double> features, std::span<double> out) const;

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept { return mean_.size(); }

  /// Fitted parameters, for batch kernels that fuse the standardisation
  /// into their own blocked loops (same (x - mean) * inv_std arithmetic,
  /// so fused scaling stays bit-identical to transform()).
  [[nodiscard]] std::span<const double> means() const noexcept {
    return mean_;
  }
  [[nodiscard]] std::span<const double> inv_stddevs() const noexcept {
    return inv_std_;
  }

  /// Reinstates fitted parameters from a snapshot (bit-exact: the vectors
  /// are the same bits means() / inv_stddevs() exposed at capture time).
  void restore(std::vector<double> mean, std::vector<double> inv_std) {
    mean_ = std::move(mean);
    inv_std_ = std::move(inv_std);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace valkyrie::ml
