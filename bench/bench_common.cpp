#include "bench_common.hpp"

#include "attacks/covert_channels.hpp"
#include "attacks/cryptominer.hpp"
#include "attacks/pp_aes.hpp"
#include "attacks/l1i_rsa.hpp"
#include "attacks/ransomware.hpp"
#include "attacks/rowhammer.hpp"
#include "attacks/tsa_covert.hpp"
#include "sim/system.hpp"

namespace valkyrie::bench {

std::vector<core::WorkloadFactory> benign_factories(
    const std::vector<workloads::BenchmarkSpec>& specs) {
  std::vector<core::WorkloadFactory> factories;
  factories.reserve(specs.size());
  for (const workloads::BenchmarkSpec& spec : specs) {
    factories.push_back([spec] {
      return std::make_unique<workloads::BenchmarkWorkload>(spec);
    });
  }
  return factories;
}

ml::StatisticalDetector trained_stat_detector(
    double target_fpr, const sim::PlatformProfile& platform,
    std::uint64_t seed) {
  // Train on every other benign program across all suites: the deployed
  // detector has seen representative benign software of every behaviour
  // class, while half the evaluation programs stay out-of-sample.
  std::vector<workloads::BenchmarkSpec> train_specs;
  const auto specs = workloads::all_single_threaded();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Every other program is out-of-sample at evaluation time; the tiny
    // standard streaming kernels are always in the reference set (any
    // deployment has profiled STREAM-like loops).
    const bool streaming =
        specs[i].program_class == workloads::ProgramClass::kStreaming;
    if (i % 2 != 0 && !streaming) continue;
    train_specs.push_back(specs[i]);
  }
  std::vector<core::WorkloadFactory> factories =
      benign_factories(train_specs);

  // Attack-signature library: the statistical detector matches incoming
  // epochs against known attack behaviour (HexPADS-style signatures), so
  // its training set carries one trace per attack class.
  factories.push_back(
      [] { return std::make_unique<attacks::PrimeProbeAesAttack>(); });
  factories.push_back(
      [] { return std::make_unique<attacks::L1iRsaAttack>(); });
  factories.push_back(
      [] { return std::make_unique<attacks::TsaCovertChannel>(); });
  factories.push_back([] {
    return std::make_unique<attacks::ContentionCovertChannel>(
        attacks::llc_covert_config());
  });
  factories.push_back([] {
    return std::make_unique<attacks::ContentionCovertChannel>(
        attacks::tlb_covert_config());
  });
  factories.push_back(
      [] { return std::make_unique<attacks::RowhammerAttack>(); });
  const auto miners = attacks::cryptominer_corpus();
  for (std::size_t i = 0; i < 6; ++i) {
    const attacks::CryptominerConfig cfg = miners[i * 3];
    factories.push_back(
        [cfg] { return std::make_unique<attacks::CryptominerAttack>(cfg); });
  }
  const auto lockers = attacks::ransomware_corpus();
  for (std::size_t i = 0; i < 6; ++i) {
    const attacks::RansomwareConfig cfg = lockers[i * 11];
    factories.push_back(
        [cfg] { return std::make_unique<attacks::RansomwareAttack>(cfg); });
  }

  const ml::TraceSet train =
      core::collect_traces(factories, 40, platform, seed);
  const std::vector<ml::Example> examples = ml::flatten(train);
  ml::StatisticalDetector detector;
  detector.fit(examples);
  core::calibrate_stat_threshold(detector, examples, target_fpr);
  return detector;
}

ml::TraceSet ransomware_corpus_traces(std::size_t epochs, std::uint64_t seed) {
  std::vector<core::WorkloadFactory> factories;
  for (const attacks::RansomwareConfig& cfg : attacks::ransomware_corpus()) {
    factories.push_back(
        [cfg] { return std::make_unique<attacks::RansomwareAttack>(cfg); });
  }
  // All 77 single-threaded benign programs: a roughly class-balanced corpus
  // with enough trace diversity for meaningful efficacy statistics.
  for (const workloads::BenchmarkSpec& spec :
       workloads::all_single_threaded()) {
    factories.push_back([spec] {
      return std::make_unique<workloads::BenchmarkWorkload>(spec);
    });
  }
  return core::collect_traces(factories, epochs, {}, seed);
}

BaselineRun run_unthrottled(std::unique_ptr<sim::Workload> workload,
                            std::size_t max_epochs,
                            const sim::PlatformProfile& platform,
                            std::uint64_t seed) {
  sim::SimSystem sys(platform, seed);
  const sim::ProcessId pid = sys.spawn(std::move(workload));
  for (std::size_t e = 0; e < max_epochs && sys.is_live(pid); ++e) {
    sys.run_epoch();
  }
  BaselineRun run;
  run.total_progress = sys.workload(pid).total_progress();
  if (sys.exit_reason(pid) == sim::ExitReason::kCompleted) {
    run.epochs_to_complete = sys.epochs_run(pid);
  }
  return run;
}

core::PolicyRunResult run_under_valkyrie(
    std::unique_ptr<sim::Workload> workload, const ml::Detector& detector,
    const ml::Detector* terminal_detector, core::ValkyrieConfig config,
    std::unique_ptr<core::Actuator> actuator, std::size_t max_epochs,
    const sim::PlatformProfile& platform, std::uint64_t seed) {
  sim::SimSystem sys(platform, seed);
  const sim::ProcessId pid = sys.spawn(std::move(workload));
  core::ValkyrieResponse policy(config, std::move(actuator),
                                terminal_detector);
  return core::run_with_policy(sys, pid, detector, policy, max_epochs);
}

}  // namespace valkyrie::bench
