#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "attacks/cryptominer.hpp"
#include "attacks/exfiltrator.hpp"
#include "attacks/ransomware.hpp"
#include "attacks/rowhammer.hpp"
#include "core/actuator.hpp"
#include "snapshot/snapshot.hpp"

namespace valkyrie::sim {

ScenarioDriver::ScenarioDriver(core::ValkyrieEngine& engine,
                               ScenarioScript script, ActuatorFactory actuators,
                               BenignFactory benign)
    : engine_(engine),
      sys_(engine.system()),
      script_(std::move(script)),
      actuators_(std::move(actuators)),
      benign_factory_(std::move(benign)),
      rng_(script_.seed),
      benign_palette_(benign_factory_ == nullptr
                          ? workloads::all_single_threaded()
                          : std::vector<workloads::BenchmarkSpec>{}) {
  if (script_.arrival_rate < 0.0 || script_.mean_lifetime < 0.0 ||
      script_.attack_fraction < 0.0 || script_.attack_fraction > 1.0 ||
      script_.kill_exit_fraction < 0.0 || script_.kill_exit_fraction > 1.0) {
    throw std::invalid_argument("ScenarioDriver: malformed script");
  }
  if (script_.attack_families.empty()) {
    script_.attack_families = {AttackFamily::kCryptominer};
  }
  campaign_progress_.assign(script_.campaigns.size(), 0);
  if (script_.recycle_histories) sys_.enable_history_recycling();
  live_ = sys_.live_processes().size();
  // The standing population: admitted before the first driven epoch, so
  // it first runs there like any boundary admission runs in the next
  // epoch. Departure scheduling is anchored at the system's CURRENT epoch
  // — the engine may already have run before the driver was attached.
  for (std::size_t i = 0; i < script_.initial_processes; ++i) {
    admit(sys_.current_epoch(), nullptr);
  }
}

ScenarioDriver::ScenarioDriver(core::ValkyrieEngine& engine,
                               ScenarioScript script,
                               const snapshot::DriverImage& image,
                               ActuatorFactory actuators, BenignFactory benign)
    : engine_(engine),
      sys_(engine.system()),
      script_(std::move(script)),
      actuators_(std::move(actuators)),
      benign_factory_(std::move(benign)),
      rng_(script_.seed),
      benign_palette_(benign_factory_ == nullptr
                          ? workloads::all_single_threaded()
                          : std::vector<workloads::BenchmarkSpec>{}) {
  using util::SerialError;
  if (script_.arrival_rate < 0.0 || script_.mean_lifetime < 0.0 ||
      script_.attack_fraction < 0.0 || script_.attack_fraction > 1.0 ||
      script_.kill_exit_fraction < 0.0 || script_.kill_exit_fraction > 1.0) {
    throw std::invalid_argument("ScenarioDriver: malformed script");
  }
  if (script_.attack_families.empty()) {
    script_.attack_families = {AttackFamily::kCryptominer};
  }
  if (snapshot::script_fingerprint(script_) != image.script_fingerprint) {
    throw SerialError(SerialError::Code::kIncompatible,
                      "driver restore: script fingerprint mismatch");
  }
  if (image.campaign_progress.size() != script_.campaigns.size()) {
    throw SerialError(SerialError::Code::kMalformed,
                      "driver restore: campaign progress count mismatch");
  }
  if (script_.recycle_histories) sys_.enable_history_recycling();
  // No admissions: the standing population is already live in the restored
  // system. Everything below resumes the recorded progress verbatim.
  rng_.set_state(image.rng);
  stats_.spawned = static_cast<std::size_t>(image.spawned);
  stats_.attack_spawned = static_cast<std::size_t>(image.attack_spawned);
  stats_.driver_kills = static_cast<std::size_t>(image.driver_kills);
  stats_.completed = static_cast<std::size_t>(image.completed);
  stats_.policy_kills = static_cast<std::size_t>(image.policy_kills);
  stats_.rejected = static_cast<std::size_t>(image.rejected);
  stats_.peak_live = static_cast<std::size_t>(image.peak_live);
  stats_.epochs = image.epochs;
  stats_.live_epoch_sum = image.live_epoch_sum;
  departures_.clear();
  departures_.reserve(image.departures.size());
  for (const auto& [epoch, pid] : image.departures) {
    departures_.push_back({epoch, pid});  // heap array verbatim, no make_heap
  }
  campaign_progress_.clear();
  campaign_progress_.reserve(image.campaign_progress.size());
  for (const std::uint64_t progress : image.campaign_progress) {
    campaign_progress_.push_back(static_cast<std::size_t>(progress));
  }
  benign_palette_cursor_ = static_cast<std::size_t>(image.benign_palette_cursor);
  prev_live_ = image.prev_live;
  live_ = static_cast<std::size_t>(image.live);
}

snapshot::DriverImage ScenarioDriver::snapshot_state() const {
  snapshot::DriverImage image;
  image.script_fingerprint = snapshot::script_fingerprint(script_);
  image.rng = rng_.state();
  image.spawned = stats_.spawned;
  image.attack_spawned = stats_.attack_spawned;
  image.driver_kills = stats_.driver_kills;
  image.completed = stats_.completed;
  image.policy_kills = stats_.policy_kills;
  image.rejected = stats_.rejected;
  image.peak_live = stats_.peak_live;
  image.epochs = stats_.epochs;
  image.live_epoch_sum = stats_.live_epoch_sum;
  image.departures.reserve(departures_.size());
  for (const Departure& d : departures_) {
    image.departures.emplace_back(d.epoch, d.pid);
  }
  image.campaign_progress.assign(campaign_progress_.begin(),
                                 campaign_progress_.end());
  image.benign_palette_cursor = benign_palette_cursor_;
  image.prev_live = prev_live_;
  image.live = live_;
  return image;
}

std::size_t ScenarioDriver::expected_processes(std::size_t epochs,
                                               double slack) const {
  // The live count already includes the standing population the
  // constructor admitted (plus any processes the caller spawned itself).
  double expected = static_cast<double>(sys_.live_processes().size()) +
                    script_.arrival_rate * static_cast<double>(epochs);
  for (const ArrivalBurst& burst : script_.bursts) {
    expected += static_cast<double>(burst.count);
  }
  for (const AttackCampaign& campaign : script_.campaigns) {
    expected += static_cast<double>(campaign.count);
  }
  return static_cast<std::size_t>(expected * slack) + 64;
}

std::uint64_t ScenarioDriver::draw_lifetime() {
  if (script_.mean_lifetime <= 0.0) return 0;  // immortal
  // Geometric by inversion: ceil(ln(U) / ln(1 - p)) with p = 1/mean,
  // minimum 1 epoch. Memoryless departures are the discrete analogue of
  // the exponential holding times timing-games models assume for process
  // arrival/exit dynamics.
  const double p = std::min(1.0, 1.0 / script_.mean_lifetime);
  if (p >= 1.0) return 1;
  double u = rng_.uniform();
  while (u <= 0.0) u = rng_.uniform();
  const double draw = std::ceil(std::log(u) / std::log1p(-p));
  return draw < 1.0 ? 1 : static_cast<std::uint64_t>(draw);
}

std::size_t ScenarioDriver::draw_poisson(double rate) {
  if (rate <= 0.0) return 0;
  if (rate > 64.0) {
    // Knuth's product method needs exp(-rate) comparisons — fine up to
    // moderate rates, numerically silly beyond. A rounded normal with the
    // Poisson's moments is the standard tail approximation and keeps the
    // draw at one uniform pair.
    const double draw = std::round(rng_.normal(rate, std::sqrt(rate)));
    return draw < 0.0 ? 0 : static_cast<std::size_t>(draw);
  }
  const double floor = std::exp(-rate);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.uniform();
  } while (p > floor);
  return k - 1;
}

std::unique_ptr<Workload> ScenarioDriver::make_benign(
    std::uint64_t lifetime, std::size_t palette_slot) {
  if (benign_factory_ != nullptr) return benign_factory_(lifetime);
  workloads::BenchmarkSpec spec =
      benign_palette_[palette_slot % benign_palette_.size()];
  // The palette supplies the program-class signature; the scenario owns
  // the program length. 0 = endless (departs only by kill).
  spec.epochs_of_work =
      lifetime == 0 ? 1e18 : static_cast<double>(lifetime);
  return std::make_unique<workloads::BenchmarkWorkload>(std::move(spec));
}

std::unique_ptr<Workload> ScenarioDriver::make_attack(AttackFamily family,
                                                      std::uint64_t seed) {
  // Per-instance seeds keep samples of one family from being clones; the
  // caller draws the seed with the other classification draws, so the RNG
  // stream shape does not depend on which family was picked or on whether
  // the arrival was admitted.
  switch (family) {
    case AttackFamily::kRansomware: {
      attacks::RansomwareConfig config;
      config.seed = seed;
      config.family_jitter = 0.1;
      return std::make_unique<attacks::RansomwareAttack>(config);
    }
    case AttackFamily::kRowhammer: {
      attacks::RowhammerConfig config;
      config.dram_seed = seed;
      return std::make_unique<attacks::RowhammerAttack>(config);
    }
    case AttackFamily::kExfiltrator: {
      attacks::ExfiltratorConfig config;
      return std::make_unique<attacks::ExfiltratorAttack>(config);
    }
    case AttackFamily::kCryptominer:
      break;
  }
  attacks::CryptominerConfig config;
  config.seed = seed;
  config.family_jitter = 0.1;
  return std::make_unique<attacks::CryptominerAttack>(config);
}

void ScenarioDriver::admit(std::uint64_t now, const AttackFamily* forced) {
  // Every RNG draw lands before the cap check, so a saturated run rejects
  // exactly the arrivals an uncapped run would have admitted and the
  // stream stays aligned afterwards.
  const bool attack =
      forced != nullptr || rng_.chance(script_.attack_fraction);
  const AttackFamily family =
      forced != nullptr
          ? *forced
          : script_.attack_families[rng_.below(script_.attack_families.size())];
  const std::uint64_t lifetime = attack ? 0 : draw_lifetime();
  const bool kill_exit =
      lifetime != 0 && rng_.chance(script_.kill_exit_fraction);
  const std::uint64_t attack_seed = rng_();
  // The palette cursor is part of the arrival's identity too: advance it
  // with the draws above so rejection cannot phase-shift later arrivals.
  const std::size_t palette_slot = benign_palette_cursor_++;

  if (live_ >= script_.max_live) {
    ++stats_.rejected;
    return;
  }
  std::unique_ptr<Workload> workload =
      attack ? make_attack(family, attack_seed)
             : make_benign(kill_exit ? 0 : lifetime, palette_slot);
  const ProcessId pid = sys_.spawn(std::move(workload));
  engine_.attach(pid, script_.monitor_config,
                 actuators_ != nullptr
                     ? actuators_()
                     : std::make_unique<core::SchedulerWeightActuator>());
  if (kill_exit) {
    departures_.push_back({now + lifetime, pid});
    std::push_heap(departures_.begin(), departures_.end(), departs_later);
  }
  ++stats_.spawned;
  if (attack) ++stats_.attack_spawned;
  ++live_;
}

std::size_t ScenarioDriver::step() {
  const std::uint64_t now = sys_.current_epoch();

  // Boundary departures due this epoch (scheduled kills). A pid the
  // response already terminated or that completed early is simply gone —
  // kill() is a no-op on the dead.
  while (!departures_.empty() && departures_.front().epoch <= now) {
    std::pop_heap(departures_.begin(), departures_.end(), departs_later);
    const Departure due = departures_.back();
    departures_.pop_back();
    if (sys_.is_live(due.pid)) {
      sys_.kill(due.pid);
      if (engine_.is_attached(due.pid)) engine_.detach(due.pid);
      ++stats_.driver_kills;
      // Keep the cap check below honest: the slot this kill freed is
      // available to this very boundary's arrivals.
      --live_;
    }
  }

  // Boundary arrivals: staged campaigns first (they model the scripted
  // threat), then scheduled bursts, then the Poisson stream.
  for (std::size_t c = 0; c < script_.campaigns.size(); ++c) {
    const AttackCampaign& campaign = script_.campaigns[c];
    std::size_t& progress = campaign_progress_[c];
    while (progress < campaign.count &&
           campaign.start_epoch + progress * campaign.stagger <= now) {
      admit(now, &campaign.family);
      ++progress;
    }
  }
  for (const ArrivalBurst& burst : script_.bursts) {
    if (burst.epoch == now) {
      for (std::size_t i = 0; i < burst.count; ++i) admit(now, nullptr);
    }
  }
  const std::size_t poisson = draw_poisson(script_.arrival_rate);
  for (std::size_t i = 0; i < poisson; ++i) admit(now, nullptr);

  // Snapshot the pre-step live list (driver kills excluded, arrivals
  // included), run the epoch, then classify this epoch's exits by merging
  // the two ascending-pid lists.
  {
    const std::span<const ProcessId> live = sys_.live_processes();
    prev_live_.assign(live.begin(), live.end());
  }
  engine_.step();
  const std::span<const ProcessId> live = sys_.live_processes();
  std::size_t l = 0;
  for (const ProcessId pid : prev_live_) {
    if (l < live.size() && live[l] == pid) {
      ++l;
      continue;
    }
    if (sys_.exit_reason(pid) == ExitReason::kCompleted) {
      ++stats_.completed;
    } else {
      ++stats_.policy_kills;  // terminated by the response, not the script
    }
    // Departed processes leave the engine too: keeping dead attachments
    // would grow the attachment table (and the split schedule's per-epoch
    // walk) with every process ever admitted.
    if (engine_.is_attached(pid)) engine_.detach(pid);
  }

  live_ = live.size();
  ++stats_.epochs;
  stats_.live_epoch_sum += static_cast<double>(live_);
  stats_.peak_live = std::max(stats_.peak_live, live_);
  return live_;
}

void ScenarioDriver::reserve(std::size_t expected) {
  prev_live_.reserve(expected);
  departures_.reserve(expected);
}

void ScenarioDriver::run(std::size_t epochs) {
  const std::size_t expected = expected_processes(epochs);
  sys_.reserve(expected);
  engine_.reserve(expected);
  reserve(expected);
  sys_.reserve_history(epochs);
  for (std::size_t i = 0; i < epochs; ++i) step();
}

}  // namespace valkyrie::sim
