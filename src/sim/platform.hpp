// Evaluation-platform profiles (paper §VI: Intel i7-3770 / Ubuntu 16.04,
// i7-7700 and i9-11900 / Ubuntu 20.04, all on 4.19-series kernels).
//
// For the simulation the platforms differ in measurement noise (HPC event
// multiplexing quality differs across PMU generations) and scheduler
// parameters; these small differences produce the per-platform slowdown
// spread of Table IV.
#pragma once

#include <string_view>

#include "sim/scheduler.hpp"

namespace valkyrie::sim {

struct PlatformProfile {
  std::string_view name = "generic";
  /// Measurement epoch: one detector inference per epoch (paper: 100 ms).
  double epoch_ms = 100.0;
  /// Multiplier on every workload's HPC noise (PMU generation quality).
  double hpc_noise = 1.0;
  SchedulerConfig scheduler{};
};

namespace platforms {

/// Intel Core i7-3770 (Ivy Bridge), Ubuntu 16.04, Linux 4.19.2.
[[nodiscard]] PlatformProfile i7_3770() noexcept;
/// Intel Core i7-7700 (Kaby Lake), Ubuntu 20.04, Linux 4.19.265.
[[nodiscard]] PlatformProfile i7_7700() noexcept;
/// Intel Core i9-11900 (Rocket Lake), Ubuntu 20.04, Linux 4.19.265.
[[nodiscard]] PlatformProfile i9_11900() noexcept;

}  // namespace platforms

}  // namespace valkyrie::sim
