#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"
#include "cache/store_buffer.hpp"
#include "util/rng.hpp"

namespace valkyrie::cache {
namespace {

CacheConfig tiny() { return {.num_sets = 4, .ways = 2, .line_bytes = 64}; }

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  EXPECT_EQ(c.access(0x1000), Access::kMiss);
  EXPECT_EQ(c.access(0x1000), Access::kHit);
  EXPECT_EQ(c.access(0x1001), Access::kHit);  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SetIndexing) {
  Cache c(tiny());
  // 4 sets * 64B lines: addresses 0, 64, 128, 192 land in sets 0..3.
  EXPECT_EQ(c.set_index_of(0), 0u);
  EXPECT_EQ(c.set_index_of(64), 1u);
  EXPECT_EQ(c.set_index_of(192), 3u);
  EXPECT_EQ(c.set_index_of(256), 0u);  // wraps
}

TEST(Cache, LruEvictionOrder) {
  Cache c(tiny());  // 2 ways per set
  // Three lines mapping to set 0: 0x0, 0x100, 0x200 (4 sets * 64 = 256).
  c.access(0x000);
  c.access(0x100);
  c.access(0x000);           // 0x000 now MRU, 0x100 LRU
  c.access(0x200);           // evicts 0x100
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x200));
}

TEST(Cache, AssociativityHoldsConflictingLines) {
  Cache c(tiny());
  c.access(0x000);
  c.access(0x100);
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, FlushLine) {
  Cache c(tiny());
  c.access(0x40);
  EXPECT_TRUE(c.contains(0x40));
  c.flush_line(0x40);
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_EQ(c.access(0x40), Access::kMiss);
}

TEST(Cache, FlushAll) {
  Cache c(tiny());
  c.access(0x00);
  c.access(0x40);
  c.flush_all();
  EXPECT_FALSE(c.contains(0x00));
  EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, ResetStats) {
  Cache c(tiny());
  c.access(0x00);
  c.reset_stats();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, PrimeProbeDetectsVictimSet) {
  // The primitive every contention attack in this repo relies on.
  Cache c(presets::l1d());
  const std::uint64_t spy_base = 0x800000;
  const CacheConfig& cfg = c.config();
  const std::uint64_t stride =
      static_cast<std::uint64_t>(cfg.num_sets) * cfg.line_bytes;
  const std::uint32_t target_set = 13;

  // Prime set 13 with 8 spy lines.
  for (std::uint32_t way = 0; way < cfg.ways; ++way) {
    c.access(spy_base + target_set * cfg.line_bytes + way * stride);
  }
  // Victim touches one line in set 13.
  c.access(0x100000 + target_set * cfg.line_bytes);
  // Probe: at least one spy line must have been evicted from set 13...
  bool evicted = false;
  for (std::uint32_t way = 0; way < cfg.ways; ++way) {
    if (!c.contains(spy_base + target_set * cfg.line_bytes + way * stride)) {
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted);
  // ...and untouched sets keep all spy lines (prime a different set fully).
  const std::uint32_t other_set = 14;
  for (std::uint32_t way = 0; way < cfg.ways; ++way) {
    c.access(spy_base + other_set * cfg.line_bytes + way * stride);
  }
  bool other_evicted = false;
  for (std::uint32_t way = 0; way < cfg.ways; ++way) {
    if (!c.contains(spy_base + other_set * cfg.line_bytes + way * stride)) {
      other_evicted = true;
    }
  }
  EXPECT_FALSE(other_evicted);
}

TEST(Cache, PresetGeometries) {
  EXPECT_EQ(presets::l1d().capacity_bytes(), 32u * 1024);
  EXPECT_EQ(presets::l1i().capacity_bytes(), 32u * 1024);
  EXPECT_EQ(presets::llc().capacity_bytes(), 2u * 1024 * 1024);
  EXPECT_EQ(presets::dtlb().num_sets * presets::dtlb().ways, 64u);
}

// Property: hits + misses == accesses, and contains() agrees with a
// just-accessed line, across random access patterns and geometries.
struct GeomParam {
  std::uint32_t sets;
  std::uint32_t ways;
};

class CacheProperty : public ::testing::TestWithParam<GeomParam> {};

TEST_P(CacheProperty, AccountingAndResidency) {
  const GeomParam p = GetParam();
  Cache c({.num_sets = p.sets, .ways = p.ways, .line_bytes = 64});
  util::Rng rng(p.sets * 131 + p.ways);
  std::uint64_t accesses = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = rng.below(1 << 20);
    c.access(addr);
    ++accesses;
    EXPECT_TRUE(c.contains(addr));  // just-accessed line is resident
  }
  EXPECT_EQ(c.hits() + c.misses(), accesses);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheProperty,
                         ::testing::Values(GeomParam{1, 1}, GeomParam{4, 2},
                                           GeomParam{64, 8},
                                           GeomParam{16, 4},
                                           GeomParam{2048, 16}));

TEST(StoreBuffer, ForwardingPaths) {
  StoreBuffer sb;
  EXPECT_EQ(sb.load(0x1234), LoadPath::kFromMemory);
  sb.store(0x1234);
  EXPECT_EQ(sb.load(0x1234), LoadPath::kForwarded);
  // 4K alias: same low 12 bits, different page.
  EXPECT_EQ(sb.load(0x1234 + 0x1000), LoadPath::kAliasReplay);
  // Unrelated address.
  EXPECT_EQ(sb.load(0x9999), LoadPath::kFromMemory);
}

TEST(StoreBuffer, YoungestMatchWins) {
  StoreBuffer sb;
  sb.store(0x5234);        // aliases 0x1234
  sb.store(0x1234);        // exact match, younger
  EXPECT_EQ(sb.load(0x1234), LoadPath::kForwarded);
}

TEST(StoreBuffer, LatencyOrdering) {
  EXPECT_LT(StoreBuffer::latency_cycles(LoadPath::kForwarded),
            StoreBuffer::latency_cycles(LoadPath::kFromMemory));
  EXPECT_LT(StoreBuffer::latency_cycles(LoadPath::kFromMemory),
            StoreBuffer::latency_cycles(LoadPath::kAliasReplay));
}

TEST(StoreBuffer, CapacityDrainsOldest) {
  // Distinct page offsets so the entries do not 4K-alias each other.
  StoreBuffer sb(2);
  sb.store(0xA010);
  sb.store(0xB020);
  sb.store(0xC030);  // evicts 0xA010
  EXPECT_EQ(sb.load(0xA010), LoadPath::kFromMemory);
  EXPECT_EQ(sb.load(0xB020), LoadPath::kForwarded);
  EXPECT_EQ(sb.size(), 2u);
}

TEST(StoreBuffer, ExplicitDrain) {
  StoreBuffer sb;
  sb.store(0x1010);
  sb.store(0x2020);
  sb.drain(1);  // oldest (0x1010) retires
  EXPECT_EQ(sb.load(0x1010), LoadPath::kFromMemory);
  EXPECT_EQ(sb.load(0x2020), LoadPath::kForwarded);
  sb.clear();
  EXPECT_EQ(sb.size(), 0u);
}

TEST(StoreBuffer, YoungerAliasShadowsOlderExactMatch) {
  // A younger 4K-aliasing store is found before an older exact match —
  // the conservative replay behaviour the TSA channel exploits.
  StoreBuffer sb;
  sb.store(0xB000);
  sb.store(0xC000);  // aliases 0xB000 (same page offset), younger
  EXPECT_EQ(sb.load(0xB000), LoadPath::kAliasReplay);
}

}  // namespace
}  // namespace valkyrie::cache
