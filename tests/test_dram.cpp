#include <gtest/gtest.h>

#include "dram/dram.hpp"

namespace valkyrie::dram {
namespace {

DramConfig small_config() {
  DramConfig c;
  c.banks = 2;
  c.rows_per_bank = 64;
  c.t_rc_ns = 50.0;
  c.refresh_interval_ms = 1.0;  // 20000 activations per window max
  c.disturbance_threshold = 5000;
  c.flip_prob_per_excess = 0.01;
  return c;
}

TEST(Dram, NoFlipsBelowThreshold) {
  Dram dram(small_config());
  // 2500 activations on each neighbour of row 10 inside one window: the
  // double-sided victim accumulates 5000 disturbances, never *exceeding*
  // the threshold; the single-sided victims (8, 12) see half that.
  for (int i = 0; i < 2500; ++i) {
    dram.activate(0, 9);
    dram.activate(0, 11);
  }
  EXPECT_EQ(dram.total_bit_flips(), 0u);
  EXPECT_EQ(dram.total_activations(), 5000u);
}

TEST(Dram, FlipsAccumulatePastThreshold) {
  Dram dram(small_config());
  // 2x the threshold on the double-sided victim inside one refresh window.
  for (int i = 0; i < 5000; ++i) {
    dram.activate(0, 9);
    dram.activate(0, 11);
  }
  EXPECT_GT(dram.total_bit_flips(), 0u);
  // Flips hit the hammered bank, on the double-sided victim (row 10) or —
  // with enough excess — the single-sided victims 8 and 12.
  std::uint64_t flips_on_10 = 0;
  for (const FlipRecord& flip : dram.flips()) {
    EXPECT_EQ(flip.bank, 0u);
    EXPECT_TRUE(flip.row == 8 || flip.row == 10 || flip.row == 12)
        << "row " << flip.row;
    if (flip.row == 10) ++flips_on_10;
  }
  // The double-sided victim must dominate.
  EXPECT_GE(2 * flips_on_10, dram.total_bit_flips());
}

TEST(Dram, RefreshClearsDisturbance) {
  DramConfig cfg = small_config();
  Dram dram(cfg);
  // 3000+3000 disturbances on row 10 with a refresh in between: each
  // window stays below the 5000 threshold, so no flips — though 6000
  // within one window would have flipped (see FlipsAccumulate test).
  for (int i = 0; i < 1500; ++i) {
    dram.activate(0, 9);
    dram.activate(0, 11);
  }
  dram.idle_ns(cfg.refresh_interval_ms * 1e6 * 2);
  for (int i = 0; i < 1500; ++i) {
    dram.activate(0, 9);
    dram.activate(0, 11);
  }
  EXPECT_EQ(dram.total_bit_flips(), 0u);
  EXPECT_GE(dram.refresh_windows_elapsed(), 2u);
}

TEST(Dram, ActivationAdvancesTime) {
  Dram dram(small_config());
  dram.activate(0, 5);
  dram.activate(0, 5);
  EXPECT_DOUBLE_EQ(dram.now_ms(), 2 * 50.0 / 1e6);
}

TEST(Dram, IdleAdvancesWindows) {
  Dram dram(small_config());
  EXPECT_EQ(dram.refresh_windows_elapsed(), 0u);
  dram.idle_ns(3.5e6);  // 3.5 ms = 3 full 1 ms windows elapsed
  EXPECT_EQ(dram.refresh_windows_elapsed(), 3u);
}

TEST(Dram, EdgeRowsDisturbOneNeighbourOnly) {
  DramConfig cfg = small_config();
  Dram dram(cfg);
  // Hammering row 0 only disturbs row 1 (no out-of-range access); well
  // past the threshold it must flip bits there and only there.
  for (int i = 0; i < 12000; ++i) dram.activate(1, 0);
  EXPECT_GT(dram.total_bit_flips(), 0u);
  for (const FlipRecord& flip : dram.flips()) {
    EXPECT_EQ(flip.row, 1u);
    EXPECT_EQ(flip.bank, 1u);
  }
}

TEST(Dram, BanksAreIndependent) {
  Dram dram(small_config());
  // Split the hammering across banks: neither victim crosses threshold,
  // even though the combined count would.
  for (int i = 0; i < 3000; ++i) {
    dram.activate(0, 9);
    dram.activate(1, 9);
  }
  EXPECT_EQ(dram.total_bit_flips(), 0u);
}

TEST(Dram, DeterministicForSeed) {
  Dram a(small_config(), 99);
  Dram b(small_config(), 99);
  for (int i = 0; i < 4000; ++i) {
    a.activate(0, 9);
    a.activate(0, 11);
    b.activate(0, 9);
    b.activate(0, 11);
  }
  EXPECT_EQ(a.total_bit_flips(), b.total_bit_flips());
}

// Property: the hammering-rate threshold. Sweep the active duty cycle; bit
// flips must be zero whenever the per-window activation count stays at or
// below the threshold, and positive when it is far above.
class DutyCycle : public ::testing::TestWithParam<double> {};

TEST_P(DutyCycle, ThresholdSeparatesFlipFromNoFlip) {
  const double duty = GetParam();
  DramConfig cfg = small_config();
  Dram dram(cfg);
  // One window = 1 ms = at most 20000 activations; victim row sees all of
  // them. Interleave active/idle at 0.1 ms granularity.
  const int slices = 100;  // 10 windows worth
  const double slice_ns = 0.1e6;
  const auto acts_per_slice = static_cast<int>(slice_ns / cfg.t_rc_ns);
  double credit = 0.0;
  for (int s = 0; s < slices; ++s) {
    credit += duty;
    if (credit >= 1.0) {
      credit -= 1.0;
      for (int a = 0; a < acts_per_slice; ++a) {
        dram.activate(0, (a & 1) ? 9 : 11);
      }
    } else {
      dram.idle_ns(slice_ns);
    }
  }
  // Per window: duty * 10 slices * 2000 activations on the victim.
  const double acts_per_window = duty * 10 * 2000;
  if (acts_per_window <= cfg.disturbance_threshold) {
    EXPECT_EQ(dram.total_bit_flips(), 0u) << "duty=" << duty;
  }
  if (acts_per_window > 3 * cfg.disturbance_threshold) {
    EXPECT_GT(dram.total_bit_flips(), 0u) << "duty=" << duty;
  }
}

INSTANTIATE_TEST_SUITE_P(Duties, DutyCycle,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5, 1.0));

}  // namespace
}  // namespace valkyrie::dram
