#include "ml/detector.hpp"

#include <cmath>
#include <stdexcept>

#include "util/serial.hpp"

namespace valkyrie::ml {

std::uint64_t Detector::state_hash() const { return util::fnv1a(name()); }

void FeatureScaler::fit(std::span<const std::vector<double>> features) {
  if (features.empty()) {
    throw std::invalid_argument("FeatureScaler::fit: no data");
  }
  const std::size_t dim = features.front().size();
  const double n = static_cast<double>(features.size());
  mean_.assign(dim, 0.0);
  inv_std_.assign(dim, 0.0);
  for (const std::vector<double>& f : features) {
    for (std::size_t i = 0; i < dim; ++i) mean_[i] += f[i];
  }
  for (double& m : mean_) m /= n;
  for (const std::vector<double>& f : features) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = f[i] - mean_[i];
      inv_std_[i] += d * d;
    }
  }
  for (double& v : inv_std_) {
    const double stddev = std::sqrt(v / n);
    v = 1.0 / std::max(stddev, 1e-9);
  }
}

void FeatureScaler::transform(std::span<const double> features,
                              std::span<double> out) const {
  if (!fitted()) throw std::logic_error("FeatureScaler: not fitted");
  if (features.size() != mean_.size() || out.size() != mean_.size()) {
    throw std::invalid_argument("FeatureScaler: dimension mismatch");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (features[i] - mean_[i]) * inv_std_[i];
  }
}

std::vector<double> FeatureScaler::transform(
    std::span<const double> features) const {
  std::vector<double> out(features.size());
  transform(features, out);
  return out;
}

WindowSummary SummaryMatrixView::gather(std::size_t c) const noexcept {
  WindowSummary out;
  out.count = counts[c];
  for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
    out.newest[f] = newest[f * stride + c];
    out.mean[f] = mean[f * stride + c];
    out.stddev[f] = stddev[f * stride + c];
  }
  if (windows != nullptr) out.window = windows[c];
  if (windows_wrap != nullptr) out.window_wrap = windows_wrap[c];
  return out;
}

Inference Detector::infer_wrapped(const WindowSummary& summary) const {
  std::vector<hpc::HpcSample> linear;
  linear.reserve(summary.window_total());
  linear.insert(linear.end(), summary.window.begin(), summary.window.end());
  linear.insert(linear.end(), summary.window_wrap.begin(),
                summary.window_wrap.end());
  return infer(std::span<const hpc::HpcSample>(linear));
}

// Default batch adapters: column-by-column loops over the scalar paths.
// They exist so the batch entry points are universally callable — any
// detector, including one written before the batch API existed, produces
// bit-identical results through them; overriding with a blocked kernel is
// purely a performance decision.

void Detector::measurement_votes(const FeatureMatrixView& batch,
                                 std::span<std::uint8_t> out) const {
  hpc::FeatureVec f;
  for (std::size_t c = 0; c < batch.count; ++c) {
    batch.gather(c, f);
    out[c] = measurement_vote(f) ? 1 : 0;
  }
}

void Detector::infer_batch(const SummaryMatrixView& batch,
                           std::span<Inference> out) const {
  for (std::size_t c = 0; c < batch.count; ++c) {
    out[c] = infer(batch.gather(c));
  }
}

Inference StreamingInference::infer(const Detector& detector,
                                    const WindowSummary& summary) {
  const std::optional<double> fraction = detector.vote_fraction();
  if (!fraction || summary.count == 0) return detector.infer(summary);
  if (counted_ > summary.count) reset();  // window shrank: recount
  if (counted_ + 1 == summary.count) {
    // The common per-epoch step: exactly one new measurement.
    if (detector.measurement_vote(summary.newest)) ++malicious_;
    counted_ = summary.count;
  } else if (counted_ < summary.count) {
    // Attached mid-run (or several epochs elapsed between calls): fold the
    // not-yet-counted measurements from the raw window. One-time cost.
    // window_total()/window_at() read through the span pair, so a wrapped
    // bounded-history ring catches up the same way an unbounded one does.
    if (summary.window_total() < summary.count) {
      return detector.infer(summary);  // raw window unavailable; fall back
    }
    hpc::FeatureVec f;
    for (std::size_t i = counted_; i < summary.count; ++i) {
      hpc::to_features(summary.window_at(i), f);
      if (detector.measurement_vote(f)) ++malicious_;
    }
    counted_ = summary.count;
  }
  return static_cast<double>(malicious_) >
                 *fraction * static_cast<double>(counted_)
             ? Inference::kMalicious
             : Inference::kBenign;
}

std::vector<double> window_features(std::span<const hpc::HpcSample> window) {
  std::vector<double> out(kWindowFeatureDim, 0.0);
  if (window.empty()) return out;
  const double n = static_cast<double>(window.size());
  hpc::FeatureVec f;
  // Mean of each log1p feature.
  for (const hpc::HpcSample& s : window) {
    hpc::to_features(s, f);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) out[i] += f[i];
  }
  for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) out[i] /= n;
  // Standard deviation of each feature.
  for (const hpc::HpcSample& s : window) {
    hpc::to_features(s, f);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      const double d = f[i] - out[i];
      out[hpc::kFeatureDim + i] += d * d;
    }
  }
  for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
    out[hpc::kFeatureDim + i] = std::sqrt(out[hpc::kFeatureDim + i] / n);
  }
  return out;
}

}  // namespace valkyrie::ml
