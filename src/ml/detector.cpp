#include "ml/detector.hpp"

#include <cmath>
#include <stdexcept>

namespace valkyrie::ml {

void FeatureScaler::fit(std::span<const std::vector<double>> features) {
  if (features.empty()) {
    throw std::invalid_argument("FeatureScaler::fit: no data");
  }
  const std::size_t dim = features.front().size();
  const double n = static_cast<double>(features.size());
  mean_.assign(dim, 0.0);
  inv_std_.assign(dim, 0.0);
  for (const std::vector<double>& f : features) {
    for (std::size_t i = 0; i < dim; ++i) mean_[i] += f[i];
  }
  for (double& m : mean_) m /= n;
  for (const std::vector<double>& f : features) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = f[i] - mean_[i];
      inv_std_[i] += d * d;
    }
  }
  for (double& v : inv_std_) {
    const double stddev = std::sqrt(v / n);
    v = 1.0 / std::max(stddev, 1e-9);
  }
}

std::vector<double> FeatureScaler::transform(
    std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("FeatureScaler: not fitted");
  if (features.size() != mean_.size()) {
    throw std::invalid_argument("FeatureScaler: dimension mismatch");
  }
  std::vector<double> out(features.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (features[i] - mean_[i]) * inv_std_[i];
  }
  return out;
}

std::vector<double> window_features(std::span<const hpc::HpcSample> window) {
  std::vector<double> out(kWindowFeatureDim, 0.0);
  if (window.empty()) return out;
  const double n = static_cast<double>(window.size());
  // Mean of each log1p feature.
  for (const hpc::HpcSample& s : window) {
    const std::vector<double> f = hpc::to_features(s);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) out[i] += f[i];
  }
  for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) out[i] /= n;
  // Standard deviation of each feature.
  for (const hpc::HpcSample& s : window) {
    const std::vector<double> f = hpc::to_features(s);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      const double d = f[i] - out[i];
      out[hpc::kFeatureDim + i] += d * d;
    }
  }
  for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
    out[hpc::kFeatureDim + i] = std::sqrt(out[hpc::kFeatureDim + i] / n);
  }
  return out;
}

}  // namespace valkyrie::ml
