#include "attacks/l1i_rsa.hpp"

#include <algorithm>
#include <cmath>

#include "attacks/signatures.hpp"
#include "sim/resources.hpp"

namespace valkyrie::attacks {
namespace {

using crypto::ModExpOp;

// I-cache layout: the square routine's code occupies lines mapping to sets
// 0..7, the multiply routine's to sets 32..39. The spy's probe code lives
// at a disjoint tag over the same sets.
constexpr std::uint64_t kSquareBase = 0x200000;
constexpr std::uint64_t kMultBase = 0x200000 + 32 * 64;
constexpr std::uint64_t kSpyBase = 0x900000;
constexpr std::uint32_t kRoutineLines = 8;
constexpr std::uint32_t kLineBytes = 64;

}  // namespace

L1iRsaAttack::L1iRsaAttack(L1iRsaConfig config)
    : config_(config),
      signature_(microarch_spy_signature(true)),
      l1i_(cache::presets::l1i()) {
  util::Rng rng(config_.exponent_seed);
  exponent_.resize(static_cast<std::size_t>(config_.exponent_bits));
  exponent_[0] = true;  // leading one
  for (std::size_t i = 1; i < exponent_.size(); ++i) {
    exponent_[i] = rng.chance(0.5);
  }
  // Run the real exponentiation once: the victim will loop over exactly
  // this operation sequence.
  (void)crypto::modexp_bits(0x10001, exponent_, 0xfffffffb, &op_stream_);
  op_votes_.assign(op_stream_.size(), 0);
}

sim::StepResult L1iRsaAttack::run_epoch(const sim::ResourceShares& shares,
                                        sim::EpochContext& ctx) {
  const double s = sim::cpu_progress_multiplier(shares.cpu) *
                   sim::memory_progress_multiplier(shares.mem);
  util::Rng& rng = *ctx.rng;

  // Victim operations that fall inside one spy probe window: 1 when the
  // spy interleaves with every op, growing as the spy loses CPU share.
  const int window =
      std::max(1, static_cast<int>(std::round(1.0 / std::max(s, 0.005))));
  const int windows = std::max(0, config_.victim_ops_per_epoch / window);

  const auto prime_routine = [&](std::uint64_t set_offset) {
    for (std::uint32_t line = 0; line < kRoutineLines; ++line) {
      for (std::uint32_t way = 0; way < l1i_.config().ways; ++way) {
        l1i_.access(kSpyBase + set_offset +
                    static_cast<std::uint64_t>(way) * 64 * kLineBytes +
                    static_cast<std::uint64_t>(line) * kLineBytes);
      }
    }
  };
  const auto probe_routine = [&](std::uint64_t set_offset) {
    bool evicted = false;
    for (std::uint32_t line = 0; line < kRoutineLines; ++line) {
      for (std::uint32_t way = 0; way < l1i_.config().ways; ++way) {
        const std::uint64_t addr =
            kSpyBase + set_offset +
            static_cast<std::uint64_t>(way) * 64 * kLineBytes +
            static_cast<std::uint64_t>(line) * kLineBytes;
        if (!l1i_.contains(addr)) evicted = true;
        l1i_.access(addr);
      }
    }
    if (rng.chance(config_.probe_flip_noise)) evicted = !evicted;
    return evicted;
  };

  for (int wi = 0; wi < windows; ++wi) {
    prime_routine(0);          // square-routine sets
    prime_routine(32 * 64);    // multiply-routine sets
    const std::size_t window_start = op_cursor_;

    // Victim executes `window` ops through the shared I-cache.
    for (int k = 0; k < window; ++k) {
      const ModExpOp op = op_stream_[op_cursor_];
      op_cursor_ = (op_cursor_ + 1) % op_stream_.size();
      const std::uint64_t base =
          op == ModExpOp::kSquare ? kSquareBase : kMultBase;
      for (std::uint32_t line = 0; line < kRoutineLines; ++line) {
        l1i_.access(base + static_cast<std::uint64_t>(line) * kLineBytes);
      }
    }
    const bool saw_square = probe_routine(0);
    const bool saw_mult = probe_routine(32 * 64);
    ++windows_observed_;

    // Vote on the ops this window must have contained. The spy knows the
    // window's position in the stream from its probe clock. With window==1
    // the guess is a pure substitution (voting converges); with larger
    // windows the spy can neither count nor order ops, so it assumes the
    // canonical "squares then one multiply" shape and its votes smear.
    if (window == 1) {
      int vote;
      if (saw_mult && !saw_square) {
        vote = +1;
      } else if (saw_square && !saw_mult) {
        vote = -1;
      } else {
        vote = rng.chance(0.5) ? +1 : -1;  // ambiguous probe: coin flip
      }
      op_votes_[window_start] += vote;
    } else {
      for (int k = 0; k < window; ++k) {
        const std::size_t pos = (window_start + static_cast<std::size_t>(k)) %
                                op_stream_.size();
        int vote = -1;  // default assumption: square
        if (saw_mult && k == window - 1) vote = +1;  // guessed tail multiply
        if (saw_mult && !saw_square) vote = +1;
        op_votes_[pos] += vote;
      }
    }
  }

  sim::StepResult out;
  out.progress = static_cast<double>(windows);
  out.hpc = signature_.sample(rng, std::max(s, 0.0), ctx.hpc_noise);
  return out;
}

double L1iRsaAttack::bit_error_rate() const {
  if (windows_observed_ == 0) return 0.5;
  // Majority-voted operation stream -> bit segmentation.
  std::vector<bool> recovered;
  recovered.reserve(exponent_.size());
  for (std::size_t i = 0; i < op_stream_.size() &&
                          recovered.size() < exponent_.size();) {
    const bool is_mult = op_votes_[i] > 0;
    if (!is_mult) {
      // A square: bit value determined by whether a multiply follows.
      const bool next_mult =
          i + 1 < op_stream_.size() && op_votes_[i + 1] > 0;
      recovered.push_back(next_mult);
      i += next_mult ? 2 : 1;
    } else {
      ++i;  // stray multiply (mis-voted): skip
    }
  }
  std::size_t errors = exponent_.size() - recovered.size();  // missing = wrong
  for (std::size_t b = 0; b < recovered.size(); ++b) {
    if (recovered[b] != exponent_[b]) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(exponent_.size());
}

}  // namespace valkyrie::attacks
