// The epoch-driven system simulator: owns processes (each wrapping a
// Workload), a CFS-style scheduler, and cgroup-style resource caps. Each
// call to run_epoch() advances simulated wall-clock time by one measurement
// epoch, computes every process's effective resource shares, executes the
// workloads and records their HPC samples.
//
// An epoch splits into a serial global phase (one CFS total-weight pass, so
// each share lookup is O(1)) and a per-process phase (workload execution,
// HPC capture, window-statistics fold) that is embarrassingly parallel:
// every process owns its Rng, history and accumulator, so run_epoch can
// shard the live list across a util::ThreadPool and stay bit-identical to
// the sequential path for any worker count.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hpc/hpc.hpp"
#include "ml/window_accumulator.hpp"
#include "sim/platform.hpp"
#include "sim/scheduler.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace valkyrie::util {
class ThreadPool;
}

namespace valkyrie::sim {

/// Why a process is no longer runnable.
enum class ExitReason : std::uint8_t { kRunning, kCompleted, kKilled };

class SimSystem {
 public:
  explicit SimSystem(const PlatformProfile& platform = {},
                     std::uint64_t seed = 0x5a1f);

  /// Adds a process; returns its id. The process starts unthrottled.
  ProcessId spawn(std::unique_ptr<Workload> workload);

  /// Runs one measurement epoch for every live process. With a pool the
  /// per-process phase is sharded across its workers; results are
  /// bit-identical to the sequential path for any shard count.
  void run_epoch(util::ThreadPool* pool = nullptr);

  /// Runs `n` epochs.
  void run_epochs(std::size_t n, util::ThreadPool* pool = nullptr);

  /// Pre-reserves capacity for `epochs` further samples in every process's
  /// history, so the per-epoch hot path performs no heap allocation until
  /// the reservation is exhausted.
  void reserve_history(std::size_t epochs);

  // --- Actuator-facing controls -------------------------------------------

  /// cgroup-style caps, as fractions of default. Only the fields the caller
  /// sets are changed (std::nullopt leaves a dimension untouched).
  void set_cgroup_caps(ProcessId pid, std::optional<double> cpu,
                       std::optional<double> mem, std::optional<double> net,
                       std::optional<double> fs);

  /// Removes all cgroup caps for the process.
  void clear_cgroup_caps(ProcessId pid);

  /// CFS-weight demotion/promotion for a threat-index change (Eq. 8).
  void apply_sched_threat_delta(ProcessId pid, double delta_threat);

  /// Restores the default scheduler weight.
  void reset_sched_weight(ProcessId pid);

  /// Kills the process (termination response).
  void kill(ProcessId pid);

  // --- Observers -----------------------------------------------------------

  [[nodiscard]] std::uint64_t current_epoch() const noexcept { return epoch_; }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(epoch_) * platform_.epoch_ms;
  }
  [[nodiscard]] const PlatformProfile& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] CfsScheduler& scheduler() noexcept { return scheduler_; }

  [[nodiscard]] bool is_live(ProcessId pid) const;
  [[nodiscard]] ExitReason exit_reason(ProcessId pid) const;
  [[nodiscard]] const Workload& workload(ProcessId pid) const;
  [[nodiscard]] Workload& workload(ProcessId pid);

  /// Effective shares the process received in the most recent epoch.
  [[nodiscard]] const ResourceShares& effective_shares(ProcessId pid) const;

  /// Current cgroup caps for the process (defaults are all 1.0).
  [[nodiscard]] const ResourceShares& cgroup_caps(ProcessId pid) const;

  /// Most recent HPC sample (empty sample before the first epoch).
  [[nodiscard]] const hpc::HpcSample& last_sample(ProcessId pid) const;

  /// All samples captured so far, oldest first.
  [[nodiscard]] const std::vector<hpc::HpcSample>& sample_history(
      ProcessId pid) const;

  /// Streaming statistics over the process's accumulated window, maintained
  /// in O(kFeatureDim) per epoch alongside the history (so per-epoch
  /// inference never re-derives features from the full window). The
  /// returned summary carries the raw window span for detectors that still
  /// need it.
  [[nodiscard]] ml::WindowSummary window_summary(ProcessId pid) const;

  /// The accumulator itself (for callers that only want the running stats).
  [[nodiscard]] const ml::WindowAccumulator& window_accumulator(
      ProcessId pid) const;

  /// Progress the process made in the most recent epoch (B^t_i).
  [[nodiscard]] double last_progress(ProcessId pid) const;

  /// Number of epochs the process has actually executed.
  [[nodiscard]] std::uint64_t epochs_run(ProcessId pid) const;

  /// The live process ids, ascending. The list is epoch-scoped: it is
  /// rebuilt lazily (allocation-free in steady state) after spawns, kills
  /// and natural completions, and the returned span is valid until the next
  /// mutation of the process set.
  [[nodiscard]] std::span<const ProcessId> live_processes() const;

 private:
  struct Proc {
    std::unique_ptr<Workload> workload;
    util::Rng rng;
    ResourceShares cgroup{};    // caps set by cgroup actuators
    ResourceShares effective{}; // what the last epoch actually granted
    hpc::HpcSample last_sample{};
    std::vector<hpc::HpcSample> history;
    ml::WindowAccumulator accumulator;
    double last_progress = 0.0;
    std::uint64_t epochs_run = 0;
    ExitReason exit = ExitReason::kRunning;
  };

  [[nodiscard]] const Proc& proc(ProcessId pid) const;
  [[nodiscard]] Proc& proc(ProcessId pid);

  PlatformProfile platform_;
  util::Rng rng_;
  CfsScheduler scheduler_;
  std::vector<Proc> procs_;
  std::uint64_t epoch_ = 0;
  // Epoch-scoped live list, rebuilt on demand so live_processes() never
  // allocates once live_ has reached procs_.size() capacity.
  mutable std::vector<ProcessId> live_;
  mutable bool live_dirty_ = true;
};

}  // namespace valkyrie::sim
