// §V-C worked example: N* = 15 epochs, incremental penalty/compensation,
// CPU actuator dropping the share 10% per unit of threat increase (floor
// 1%). Prints the epoch-by-epoch share trajectory and effective slowdowns
// (Eq. 4) for both actuator-interpretation conventions, next to the
// paper's reported numbers (79.6% attack / 26% false-positive case).
#include <cstdio>

#include "core/slowdown.hpp"
#include "util/table.hpp"

namespace {
using namespace valkyrie;
}

int main() {
  std::printf("== SV-C worked example: slowdown arithmetic ==\n\n");

  const auto attack = core::always_malicious_schedule(15);
  const auto fp = core::fp_burst_schedule(5, 15);

  for (const auto [actuator, label] :
       {std::pair{core::WorkedActuator::kPercentagePoint,
                  "percentage-point (share -= 0.1*dT)"},
        std::pair{core::WorkedActuator::kMultiplicative,
                  "multiplicative Eq. 8 (share *= 1-0.1*dT)"}}) {
    core::WorkedExampleConfig cfg;
    cfg.actuator = actuator;

    util::TextTable table({"epoch", "share (attack)", "share (FP burst)"});
    const auto attack_shares = core::worked_example_shares(attack, cfg);
    const auto fp_shares = core::worked_example_shares(fp, cfg);
    for (std::size_t e = 0; e < attack_shares.size(); ++e) {
      table.add_row({std::to_string(e), util::fmt(attack_shares[e], 3),
                     util::fmt(fp_shares[e], 3)});
    }
    std::printf("-- actuator convention: %s --\n%s", label,
                table.render().c_str());
    std::printf(
        "attack slowdown: %.2f%% (paper: 79.6%%) | FP-burst slowdown: "
        "%.2f%% (paper: 26%%)\n\n",
        core::worked_example_slowdown_pct(attack, cfg),
        core::worked_example_slowdown_pct(fp, cfg));
  }

  // The configurable floor trades security for performance (paper §V-C).
  util::TextTable floors({"share floor", "attack slowdown", "FP slowdown"});
  for (const double floor : {0.01, 0.1, 0.25, 0.5}) {
    core::WorkedExampleConfig cfg;
    cfg.floor = floor;
    floors.add_row({util::fmt_pct(floor, 0),
                    util::fmt(core::worked_example_slowdown_pct(attack, cfg), 1) + "%",
                    util::fmt(core::worked_example_slowdown_pct(fp, cfg), 1) + "%"});
  }
  std::printf("-- user-configurable slowdown cap --\n%s\n",
              floors.render().c_str());
  return 0;
}
