// snapshot_diff: field-level comparison of two engine snapshots.
//
//   ./build/examples/snapshot_diff a.vlky b.vlky   diff two snapshot files
//   ./build/examples/snapshot_diff                 self-contained demo
//
// The demo runs a churn campaign, snapshots it mid-flight, restores a
// SECOND engine from the bytes (different worker count and step mode) and
// races both to the same epoch: diff() comes back empty, which is the
// restore determinism contract made visible. It then keeps the original
// running one epoch longer and prints the first few fields that drift —
// the same view you would use to localize divergence after a real crash
// recovery.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/traces.hpp"
#include "core/valkyrie.hpp"
#include "ml/stat_detector.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshotter.hpp"
#include "workloads/benchmarks.hpp"

using namespace valkyrie;

namespace {

std::vector<std::uint8_t> read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "snapshot_diff: cannot open %s\n", path);
    std::exit(2);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

int print_diff(const snapshot::SnapshotImage& a,
               const snapshot::SnapshotImage& b, std::size_t limit) {
  const std::vector<snapshot::FieldDiff> diffs = snapshot::diff(a, b);
  if (diffs.empty()) {
    std::printf("snapshots are bit-identical (0 differing fields)\n");
    return 0;
  }
  std::printf("snapshots differ in %zu field%s:\n", diffs.size(),
              diffs.size() == 1 ? "" : "s");
  for (std::size_t i = 0; i < diffs.size() && i < limit; ++i) {
    std::printf("  %-48s %s  ->  %s\n", diffs[i].path.c_str(),
                diffs[i].lhs.c_str(), diffs[i].rhs.c_str());
  }
  if (diffs.size() > limit) {
    std::printf("  ... and %zu more\n", diffs.size() - limit);
  }
  return 1;
}

ml::StatisticalDetector demo_detector() {
  std::vector<core::WorkloadFactory> corpus;
  for (const auto& spec : workloads::spec2006()) {
    corpus.push_back([spec] {
      return std::make_unique<workloads::BenchmarkWorkload>(spec);
    });
  }
  const ml::TraceSet traces = core::collect_traces(corpus, 30);
  ml::StatisticalDetector detector;
  detector.fit(ml::flatten(traces));
  return detector;
}

int run_demo() {
  const ml::StatisticalDetector detector = demo_detector();

  sim::ScenarioScript script;
  script.seed = 0xd1ff;
  script.initial_processes = 10;
  script.arrival_rate = 0.3;
  script.attack_fraction = 0.2;
  script.mean_lifetime = 50.0;
  script.campaigns = {{40, 4, 12, sim::AttackFamily::kCryptominer}};

  // Original run: snapshot at epoch 80 (off-thread encode via Snapshotter,
  // exactly as a production checkpoint loop would).
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector, /*worker_threads=*/2,
                              core::ValkyrieEngine::StepMode::kFused);
  sim::ScenarioDriver driver(engine, script);

  std::vector<std::uint8_t> checkpoint;
  snapshot::Snapshotter snapshotter(
      [&checkpoint](std::vector<std::uint8_t> bytes) {
        checkpoint = std::move(bytes);
      });
  for (int epoch = 0; epoch < 80; ++epoch) driver.step();
  snapshotter.request(driver);
  snapshotter.flush();
  std::printf("checkpoint at epoch %llu: %zu bytes\n",
              static_cast<unsigned long long>(sys.current_epoch()),
              checkpoint.size());

  // Recovery: a fresh engine with a DIFFERENT run configuration (8 workers,
  // batched inference) restored from the checkpoint bytes.
  const snapshot::SnapshotImage image = snapshot::parse(checkpoint);
  sim::SimSystem sys2;
  core::ValkyrieEngine engine2(sys2, detector, /*worker_threads=*/8,
                               core::ValkyrieEngine::StepMode::kBatched);
  snapshot::restore(image, engine2, snapshot::RestoreContext{});
  sim::ScenarioDriver restored(engine2, script, image.driver);

  // Race both to epoch 140 and compare field by field.
  for (int epoch = 0; epoch < 60; ++epoch) {
    driver.step();
    restored.step();
  }
  std::printf("\nepoch %llu, original (fused/2w) vs restored (batched/8w):\n",
              static_cast<unsigned long long>(sys.current_epoch()));
  print_diff(snapshot::capture(driver), snapshot::capture(restored), 12);

  // Let the original drift one epoch ahead: diff() localizes the skew.
  driver.step();
  std::printf("\nafter one extra epoch on the original only:\n");
  print_diff(snapshot::capture(driver), snapshot::capture(restored), 12);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    try {
      const std::vector<std::uint8_t> a = read_file(argv[1]);
      const std::vector<std::uint8_t> b = read_file(argv[2]);
      return print_diff(snapshot::parse(a), snapshot::parse(b), 40);
    } catch (const snapshot::SnapshotError& e) {
      std::fprintf(stderr, "snapshot_diff: %s\n", e.what());
      return 2;
    }
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [a.vlky b.vlky]\n", argv[0]);
    return 2;
  }
  return run_demo();
}
