// Table II: rate of progress of the example time-progressive attack (hash
// the victim's files, exfiltrate over the network) under varying resource
// availability. Paper defaults: 225.7 KB/s transmitted; CPU and file-rate
// throttling degrade near-proportionally, memory sharply, network per the
// TCP-policing curve.
#include <cstdio>

#include "attacks/exfiltrator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace valkyrie;

double rate_kb_per_s(const sim::ResourceShares& shares, int epochs = 50) {
  attacks::ExfiltratorAttack attack;
  util::Rng rng(0x7ab1e2);
  sim::EpochContext ctx;
  ctx.rng = &rng;
  for (int e = 0; e < epochs; ++e) {
    ctx.epoch = static_cast<std::uint64_t>(e);
    attack.run_epoch(shares, ctx);
  }
  const double seconds = epochs * ctx.epoch_ms / 1000.0;
  return attack.total_progress() / seconds / 1000.0;
}

}  // namespace

int main() {
  std::printf(
      "== Table II: exfiltrator progress vs. resource availability ==\n"
      "(paper default: 225.7 KB/s)\n\n");

  const double base = rate_kb_per_s({});

  util::TextTable table(
      {"resource", "availability", "KB/s", "slowdown", "paper slowdown"});
  const auto row = [&](const char* resource, const char* avail,
                       sim::ResourceShares shares, const char* paper) {
    const double rate = rate_kb_per_s(shares);
    table.add_row({resource, avail, util::fmt(rate, 2),
                   util::fmt_pct(1.0 - rate / base, 1), paper});
  };

  table.add_row({"CPU", "100% [default]", util::fmt(base, 2), "-", "-"});
  row("CPU", "90%", {.cpu = 0.9}, "8.7%");
  row("CPU", "50%", {.cpu = 0.5}, "45.2%");
  row("CPU", "1%", {.cpu = 0.01}, "99.7%");

  row("Memory", "93.6%", {.mem = 0.936}, "99.96%");
  row("Memory", "89.4%", {.mem = 0.894}, "99.99%");

  row("Network", "50%", {.net = 0.5}, "11.4%");
  row("Network", "1e-3", {.net = 1e-3}, "74.9%");
  row("Network", "1e-6", {.net = 1e-6}, "99.98%");

  row("Filesystem", "90 files/s", {.fs = 0.9}, "11.3%");
  row("Filesystem", "50 files/s", {.fs = 0.5}, "49.6%");
  row("Filesystem", "1 file/s", {.fs = 0.01}, "99%");

  std::printf("%s\n", table.render().c_str());
  return 0;
}
