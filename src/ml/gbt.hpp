// Gradient-boosted decision trees on the logistic loss — the paper's
// "XGBoost ensemble" (as deployed in SUNDEW [Karapoola 2024]). Second-order
// boosting: each regression tree is fit to the gradient/hessian of the
// logistic loss, leaf values are -G/(H+lambda), exactly the XGBoost
// formulation with exact greedy splits (no histogram approximation; the
// datasets here are small).
//
// Like the SVM, the detector adapter classifies each measurement and
// majority-votes across the accumulated window.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/detector.hpp"

namespace valkyrie::ml {

struct GbtConfig {
  int num_trees = 25;
  int max_depth = 2;
  double learning_rate = 0.2;
  /// L2 regularisation on leaf values (XGBoost lambda).
  double lambda = 1.0;
  /// Minimum gain to keep a split (XGBoost gamma).
  double min_gain = 1e-4;
  /// Minimum examples per leaf.
  std::size_t min_leaf = 4;
};

class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbtConfig config = {}) : config_(config) {}

  void train(const std::vector<Example>& examples);

  /// Raw additive score (log-odds); positive = malicious.
  [[nodiscard]] double predict_logit(std::span<const double> features) const;

  /// Batch logit over a feature-major matrix (feature f of item c at
  /// features[f * stride + c]): out[c] = predict_logit(column c),
  /// bit-identically (per-column tree sums run in the same tree order).
  /// The tree loop runs outermost so each tree's node array stays L1-hot
  /// across the whole batch, and traversal inside it is LAYERED: every
  /// column advances one level per pass through a flat-SoA node table
  /// whose leaves self-loop, so the per-column walk is a fixed-depth
  /// select chain (no data-dependent branches to mispredict on mixed
  /// benign/attack batches) with identical comparisons to the scalar walk.
  void predict_logit_plane(const double* features, std::size_t stride,
                           std::size_t n, double* out) const;

  /// Probability of malicious via sigmoid.
  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] const GbtConfig& config() const noexcept { return config_; }

 private:
  /// Flat node storage: a node is a leaf when feature < 0.
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    double leaf_value = 0.0;
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<Node>;

  /// Layered flat-SoA projection of one tree, built once at train() time
  /// for the plane kernel: parallel node arrays traversed a fixed `depth`
  /// steps with a branch-free select. Leaves self-loop — threshold is
  /// -inf, so `x < threshold` is false for every finite feature and the
  /// select always takes `right`, which points back at the leaf itself —
  /// letting shallow paths park on their leaf while deeper paths descend.
  struct FlatTree {
    std::vector<std::int32_t> feature;  // 0 for leaves (the read is benign)
    std::vector<double> threshold;      // -inf for leaves
    std::vector<std::int32_t> left;
    std::vector<std::int32_t> right;    // == self for leaves
    std::vector<double> value;          // leaf value (0.0 for split nodes)
    int depth = 0;                      // select steps to settle any column
  };

  int build_node(Tree& tree, const std::vector<Example>& examples,
                 std::vector<std::uint32_t>& indices, std::size_t begin,
                 std::size_t end, const std::vector<double>& grad,
                 const std::vector<double>& hess, int depth);
  [[nodiscard]] static double tree_output(const Tree& tree,
                                          std::span<const double> features);
  void build_flat();

  GbtConfig config_;
  std::vector<Tree> trees_;
  std::vector<FlatTree> flat_;  // one per tree, same order
  double base_score_ = 0.0;
  /// True when every split feature fits the per-measurement feature
  /// vector, i.e. predict_logit_plane may use its gather tile. Fixed at
  /// train() time so the hot path never re-scans the ensemble.
  bool plane_tile_ok_ = false;
};

class GbtDetector final : public Detector {
 public:
  explicit GbtDetector(GradientBoostedTrees model)
      : model_(std::move(model)) {}

  [[nodiscard]] std::string_view name() const override { return "xgboost"; }
  using Detector::infer;  // keep infer(WindowSummary) visible
  [[nodiscard]] Inference infer(
      std::span<const hpc::HpcSample> window) const override;
  /// Per-measurement vote structure (paper §IV-A): simple majority over
  /// individual measurement classifications. Lets callers keep running
  /// counts and infer in O(1) per epoch via StreamingInference.
  [[nodiscard]] std::optional<double> vote_fraction() const override {
    return 0.5;
  }
  [[nodiscard]] bool measurement_vote(
      std::span<const double> features) const override {
    return model_.predict_logit(features) > 0.0;
  }
  /// Batch votes via predict_logit_plane (tree-outer traversal over the
  /// column block), thresholded at 0 exactly like the scalar vote.
  void measurement_votes(const FeatureMatrixView& batch,
                         std::span<std::uint8_t> out) const override;
  /// Vote-based: a batched driver only ever feeds this detector the
  /// newest-measurement rows.
  [[nodiscard]] PlaneSections plane_sections() const override {
    return PlaneSections::kNewestOnly;
  }

  [[nodiscard]] const GradientBoostedTrees& model() const noexcept {
    return model_;
  }

  [[nodiscard]] static GbtDetector make(const TraceSet& train,
                                        GbtConfig config = {});

 private:
  GradientBoostedTrees model_;
};

}  // namespace valkyrie::ml
