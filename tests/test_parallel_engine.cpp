// Determinism contract of the sharded engine: for ANY worker count, a run
// must be bit-identical to the sequential engine — monitor states, actions,
// threat indices, HPC histories, scheduler weights, cgroup caps and exit
// reasons. Every process owns its Rng and window state, shares are computed
// from a serial snapshot, and actuator commands are committed serially in
// attachment order, so nothing may depend on thread interleaving.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "core/actuator.hpp"
#include "core/valkyrie.hpp"
#include "ml/svm.hpp"
#include "sim/system.hpp"
#include "sim/workload.hpp"
#include "util/thread_pool.hpp"

namespace valkyrie::core {
namespace {

// --- Workloads ---------------------------------------------------------------

hpc::HpcSignature benign_signature() {
  hpc::HpcSignature sig;
  sig.at(hpc::Event::kInstructions) = 3e8;
  sig.at(hpc::Event::kCycles) = 3.5e8;
  sig.at(hpc::Event::kL1dMisses) = 2e6;
  sig.at(hpc::Event::kLlcMisses) = 4e5;
  sig.at(hpc::Event::kMemBandwidth) = 5e7;
  return sig;
}

hpc::HpcSignature attack_signature() {
  hpc::HpcSignature sig;
  sig.at(hpc::Event::kInstructions) = 4e7;
  sig.at(hpc::Event::kCycles) = 3.5e8;
  sig.at(hpc::Event::kLlcMisses) = 4e7;
  sig.at(hpc::Event::kMemBandwidth) = 2e9;
  return sig;
}

/// Signature-driven workload; finishes after `lifetime` epochs (0 = never),
/// so runs mix completions into the live-list bookkeeping.
class SigWorkload final : public sim::Workload {
 public:
  SigWorkload(hpc::HpcSignature sig, bool attack, std::uint64_t lifetime = 0)
      : sig_(sig), attack_(attack), lifetime_(lifetime) {}

  [[nodiscard]] std::string_view name() const override { return "sig"; }
  [[nodiscard]] bool is_attack() const override { return attack_; }
  [[nodiscard]] std::string_view progress_units() const override {
    return "epochs";
  }
  sim::StepResult run_epoch(const sim::ResourceShares& shares,
                            sim::EpochContext& ctx) override {
    sim::StepResult out;
    out.progress = shares.cpu;
    progress_ += out.progress;
    out.hpc = sig_.sample(*ctx.rng, shares.cpu, ctx.hpc_noise);
    ++epochs_;
    out.finished = lifetime_ != 0 && epochs_ >= lifetime_;
    return out;
  }
  [[nodiscard]] double total_progress() const override { return progress_; }

 private:
  hpc::HpcSignature sig_;
  bool attack_;
  std::uint64_t lifetime_;
  double progress_ = 0.0;
  std::uint64_t epochs_ = 0;
};

ml::TraceSet training_corpus() {
  util::Rng rng(0xc0ffee);
  ml::TraceSet set;
  for (int label = 0; label < 2; ++label) {
    const hpc::HpcSignature sig =
        label == 1 ? attack_signature() : benign_signature();
    for (int t = 0; t < 8; ++t) {
      ml::LabeledTrace trace;
      trace.malicious = label == 1;
      trace.name = (trace.malicious ? "attack-" : "benign-") +
                   std::to_string(t);
      for (int i = 0; i < 25; ++i) trace.samples.push_back(sig.sample(rng));
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

// --- Full-run capture --------------------------------------------------------

constexpr std::size_t kProcs = 24;
constexpr std::size_t kEpochs = 500;

struct RunResult {
  // actions[epoch][attachment index]
  std::vector<std::vector<ValkyrieMonitor::Action>> actions;
  std::vector<ProcessState> states;
  std::vector<double> threats;
  std::vector<std::size_t> measurements;
  std::vector<sim::ExitReason> exits;
  std::vector<double> progress;
  std::vector<double> sched_factors;
  std::vector<double> cpu_caps;
  std::vector<std::vector<hpc::HpcSample>> histories;
};

RunResult run_engine(std::size_t worker_threads) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  sim::SimSystem sys;
  ValkyrieEngine engine(sys, detector, worker_threads);

  std::vector<sim::ProcessId> pids;
  for (std::size_t i = 0; i < kProcs; ++i) {
    // Mostly benign, a few attacks (terminated mid-run) and a few finite
    // benign programs (natural completion mid-run).
    const bool attack = i % 6 == 1;
    const std::uint64_t lifetime = i % 8 == 5 ? 120 + i : 0;
    const hpc::HpcSignature sig =
        attack ? attack_signature() : benign_signature();
    const sim::ProcessId pid =
        sys.spawn(std::make_unique<SigWorkload>(sig, attack, lifetime));
    // Mix actuator families: the scheduler actuator exercises the shared
    // CFS weight map, the cgroup actuator the per-process caps.
    std::unique_ptr<Actuator> actuator;
    if (i % 2 == 0) {
      actuator = std::make_unique<SchedulerWeightActuator>();
    } else {
      actuator = std::make_unique<CgroupCpuActuator>();
    }
    engine.attach(pid, ValkyrieConfig{}, std::move(actuator));
    pids.push_back(pid);
  }

  RunResult r;
  r.actions.reserve(kEpochs);
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    engine.step();
    std::vector<ValkyrieMonitor::Action> epoch_actions;
    epoch_actions.reserve(kProcs);
    for (const sim::ProcessId pid : pids) {
      epoch_actions.push_back(engine.last_action(pid));
    }
    r.actions.push_back(std::move(epoch_actions));
  }

  for (const sim::ProcessId pid : pids) {
    r.states.push_back(engine.monitor(pid).state());
    r.threats.push_back(engine.monitor(pid).threat());
    r.measurements.push_back(engine.monitor(pid).measurements());
    r.exits.push_back(sys.exit_reason(pid));
    r.progress.push_back(sys.workload(pid).total_progress());
    r.sched_factors.push_back(sys.scheduler().weight_factor(pid));
    r.cpu_caps.push_back(sys.cgroup_caps(pid).cpu);
    r.histories.push_back(sys.sample_history(pid));
  }
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      std::size_t threads) {
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t e = 0; e < a.actions.size(); ++e) {
    ASSERT_EQ(a.actions[e], b.actions[e]) << threads << " workers, epoch " << e;
  }
  EXPECT_EQ(a.states, b.states) << threads << " workers";
  EXPECT_EQ(a.measurements, b.measurements) << threads << " workers";
  EXPECT_EQ(a.exits, b.exits) << threads << " workers";
  // Doubles compared exactly: the contract is bit-identical, not close.
  EXPECT_EQ(a.threats, b.threats) << threads << " workers";
  EXPECT_EQ(a.progress, b.progress) << threads << " workers";
  EXPECT_EQ(a.sched_factors, b.sched_factors) << threads << " workers";
  EXPECT_EQ(a.cpu_caps, b.cpu_caps) << threads << " workers";
  ASSERT_EQ(a.histories.size(), b.histories.size());
  for (std::size_t p = 0; p < a.histories.size(); ++p) {
    ASSERT_EQ(a.histories[p].size(), b.histories[p].size())
        << threads << " workers, pid " << p;
    for (std::size_t e = 0; e < a.histories[p].size(); ++e) {
      ASSERT_EQ(a.histories[p][e].counts, b.histories[p][e].counts)
          << threads << " workers, pid " << p << ", epoch " << e;
    }
  }
}

TEST(ParallelEngine, ShardedRunsAreBitIdenticalToSequential) {
  const RunResult sequential = run_engine(1);

  // The run must exercise mixed outcomes or the test proves nothing.
  bool saw_kill = false;
  bool saw_completion = false;
  bool saw_survivor = false;
  for (const sim::ExitReason exit : sequential.exits) {
    saw_kill |= exit == sim::ExitReason::kKilled;
    saw_completion |= exit == sim::ExitReason::kCompleted;
    saw_survivor |= exit == sim::ExitReason::kRunning;
  }
  ASSERT_TRUE(saw_kill);
  ASSERT_TRUE(saw_completion);
  ASSERT_TRUE(saw_survivor);
  bool saw_throttle = false;
  for (const auto& epoch_actions : sequential.actions) {
    for (const ValkyrieMonitor::Action action : epoch_actions) {
      saw_throttle |= action == ValkyrieMonitor::Action::kThrottled;
    }
  }
  ASSERT_TRUE(saw_throttle);

  for (const std::size_t threads : {2u, 8u}) {
    const RunResult sharded = run_engine(threads);
    expect_identical(sequential, sharded, threads);
  }
}

TEST(ParallelSim, RunEpochMatchesSequentialBitForBit) {
  // The simulator alone: sharded run_epoch must reproduce the sequential
  // histories and effective shares exactly.
  const auto run = [](util::ThreadPool* pool) {
    sim::SimSystem sys;
    std::vector<sim::ProcessId> pids;
    for (std::size_t i = 0; i < 9; ++i) {
      pids.push_back(sys.spawn(std::make_unique<SigWorkload>(
          i % 3 == 0 ? attack_signature() : benign_signature(), i % 3 == 0,
          i == 4 ? 50 : 0)));
    }
    // Uneven scheduler weights so share computation is non-trivial.
    sys.apply_sched_threat_delta(pids[2], 3.0);
    sys.apply_sched_threat_delta(pids[7], 1.0);
    for (int e = 0; e < 200; ++e) sys.run_epoch(pool);
    std::vector<std::vector<hpc::HpcSample>> histories;
    std::vector<double> shares;
    for (const sim::ProcessId pid : pids) {
      histories.push_back(sys.sample_history(pid));
      shares.push_back(sys.effective_shares(pid).cpu);
    }
    return std::make_pair(histories, shares);
  };

  const auto sequential = run(nullptr);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const auto sharded = run(&pool);
    EXPECT_EQ(sequential.second, sharded.second) << threads << " threads";
    ASSERT_EQ(sequential.first.size(), sharded.first.size());
    for (std::size_t p = 0; p < sequential.first.size(); ++p) {
      ASSERT_EQ(sequential.first[p].size(), sharded.first[p].size());
      for (std::size_t e = 0; e < sequential.first[p].size(); ++e) {
        ASSERT_EQ(sequential.first[p][e].counts, sharded.first[p][e].counts)
            << threads << " threads, pid " << p << ", epoch " << e;
      }
    }
  }
}

TEST(ParallelEngine, DuplicateAttachRejected) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  sim::SimSystem sys;
  ValkyrieEngine engine(sys, detector, 2);
  const sim::ProcessId pid =
      sys.spawn(std::make_unique<SigWorkload>(benign_signature(), false));
  engine.attach(pid, ValkyrieConfig{},
                std::make_unique<SchedulerWeightActuator>());
  EXPECT_THROW(engine.attach(pid, ValkyrieConfig{},
                             std::make_unique<SchedulerWeightActuator>()),
               std::invalid_argument);
}

TEST(ParallelEngine, LastActionRequiresAttachment) {
  const ml::SvmDetector detector = ml::SvmDetector::make(training_corpus(), 3);
  sim::SimSystem sys;
  const ValkyrieEngine engine(sys, detector, 2);
  EXPECT_THROW((void)engine.last_action(0), std::out_of_range);
}

}  // namespace
}  // namespace valkyrie::core
