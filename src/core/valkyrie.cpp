#include "core/valkyrie.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "fault/fault_plane.hpp"
#include "snapshot/snapshot.hpp"
#include "util/serial.hpp"

namespace valkyrie::core {

ValkyrieMonitor::ValkyrieMonitor(ValkyrieConfig config,
                                 std::unique_ptr<Actuator> actuator)
    : config_(config),
      actuator_(std::move(actuator)),
      threat_(config.threat) {
  if (actuator_ == nullptr) {
    throw std::invalid_argument("ValkyrieMonitor: null actuator");
  }
  if (config_.required_measurements == 0) {
    throw std::invalid_argument("ValkyrieMonitor: N* must be positive");
  }
}

ValkyrieMonitor::PlannedAction ValkyrieMonitor::plan(
    sim::ProcessId pid, ml::Inference inference,
    std::optional<ml::Inference> terminal_inference) {
  PlannedAction out;
  if (state_ == ProcessState::kTerminated) return out;

  // Measurement-accumulation phase (Algorithm 1 lines 5-20). Under episode
  // scoping, counting starts with the epoch that opens a suspicious
  // episode; a benign epoch in the normal state accumulates nothing.
  if (measurements_ < config_.required_measurements) {
    if (inference == ml::Inference::kInvalid) {
      // No usable verdict this epoch: no measurement consumed, no threat
      // change, no action. The process coasts under whatever restrictions
      // it already has — a faulted detector must be able to neither clear
      // nor escalate a process.
      return out;
    }
    const bool counting = !config_.episode_scoped_measurements ||
                          state_ != ProcessState::kNormal ||
                          inference == ml::Inference::kMalicious;
    if (counting) ++measurements_;
    const ThreatIndex::Update update = threat_.on_inference(inference);
    state_ = update.state;
    if (update.recovered) {
      // Suspicious -> normal: threat 0 means no restrictions remain, and
      // an episode-scoped measurement budget starts afresh.
      if (config_.episode_scoped_measurements) measurements_ = 0;
      out.action = Action::kRestored;
      out.command = {ActuatorCommand::Kind::kReset, pid, 0.0, actuator_.get()};
      return out;
    }
    if (update.delta != 0.0) {
      out.action =
          update.delta > 0.0 ? Action::kThrottled : Action::kRelaxed;
      out.command = {ActuatorCommand::Kind::kApply, pid, update.delta,
                     actuator_.get()};
    }
    return out;
  }

  // Terminable phase (lines 21-26 / Fig. 3): the detector has accumulated
  // the user-required evidence; the decision is taken on the accumulated-
  // window view when one is provided. Benign -> full restore (Areset);
  // malicious -> terminate.
  state_ = ProcessState::kTerminable;
  const ml::Inference decision = terminal_inference.value_or(inference);
  if (decision == ml::Inference::kInvalid) {
    // No usable verdict at the decision point: stay terminable and let the
    // next valid epoch decide restore-vs-terminate.
    return out;
  }
  if (decision == ml::Inference::kBenign) {
    if (config_.episode_scoped_measurements) {
      // The episode resolved benign at full evidence: back to normal with
      // a fresh measurement budget; penalty/compensation escalation
      // carries over (repeat episodes throttle harder).
      state_ = ProcessState::kNormal;
      measurements_ = 0;
      threat_.reset_threat();
    }
    out.action = Action::kRestored;
    out.command = {ActuatorCommand::Kind::kReset, pid, 0.0, actuator_.get()};
    return out;
  }
  state_ = ProcessState::kTerminated;
  out.action = Action::kTerminated;
  out.command = {ActuatorCommand::Kind::kKill, pid, 0.0, nullptr};
  return out;
}

ValkyrieMonitor::Action ValkyrieMonitor::on_epoch(
    sim::SimSystem& sys, sim::ProcessId pid, ml::Inference inference,
    std::optional<ml::Inference> terminal_inference) {
  const PlannedAction planned = plan(pid, inference, terminal_inference);
  planned.command.apply(sys);
  return planned.action;
}

ValkyrieEngine::ValkyrieEngine(sim::SimSystem& sys,
                               const ml::Detector& detector,
                               std::size_t worker_threads, StepMode mode)
    : sys_(sys), detector_(detector), mode_(mode) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && worker_threads > hw) worker_threads = hw;
  if (worker_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(worker_threads);
  }
  shard_commands_.resize(shard_count());
  // The batched schedule reads the detector's declared sections straight
  // off the system's feature plane; arm exactly that much per-slot
  // maintenance now so the very first epoch already fills it.
  if (mode_ == StepMode::kBatched) {
    sys_.enable_feature_plane(detector_.plane_sections());
  }
}

void ValkyrieEngine::reserve_shard_buffers(std::size_t per_shard) {
  for (std::vector<ActuatorCommand>& buf : shard_commands_) {
    buf.reserve(per_shard);  // no-op once capacity has caught up
  }
}

void ValkyrieEngine::reserve(std::size_t max_processes) {
  attached_.reserve(max_processes);
  attached_index_.reserve(max_processes);
  // The batched schedule's per-slot scratch follows the live count, which
  // never exceeds the processes ever spawned.
  batch_finished_.reserve(max_processes);
  batch_votes_.reserve(max_processes);
  batch_infer_.reserve(max_processes);
  // At most one pending retry per attached process.
  retry_.reserve(max_processes);
  reserve_shard_buffers(
      std::min(shard_quota(max_processes), max_processes));
}

void ValkyrieEngine::attach(sim::ProcessId pid, ValkyrieConfig config,
                            std::unique_ptr<Actuator> actuator,
                            const ml::Detector* terminal_detector) {
  if (attached_index_.contains(pid)) {
    throw std::invalid_argument("ValkyrieEngine: process already attached");
  }
  attached_index_.insert(pid, static_cast<std::uint32_t>(attached_.size()));
  Attached a{pid,
             ValkyrieMonitor(config, std::move(actuator)),
             terminal_detector,
             {},
             {},
             ValkyrieMonitor::Action::kNone,
             0};
  attached_.push_back(std::move(a));
  // A shard emits at most one command per attachment it owns; sizing to one
  // ceil-chunk keeps the per-epoch hot path allocation-free without
  // shard_count-fold overcommit. (The fused schedule re-checks per step
  // against its live-slot ranges, which may cluster attachments.)
  reserve_shard_buffers(shard_quota(attached_.size()));
}

void ValkyrieEngine::detach(sim::ProcessId pid) {
  const std::uint32_t* idx_entry = attached_index_.find(pid);
  if (idx_entry == nullptr) {
    throw std::out_of_range("ValkyrieEngine: process not attached");
  }
  // Tombstone, don't erase: k detaches between steps cost one stable
  // compaction pass (prune_detached) instead of k ordered erases — the
  // same mark-then-compact pattern SimSystem uses for slot retirement.
  // Stability keeps attachment order, so runs that mix detaches stay
  // bit-comparable across schedules by construction.
  const auto idx = static_cast<std::size_t>(*idx_entry);
  attached_index_.erase(pid);
  attached_[idx].detached = true;
  ++detached_count_;
}

void ValkyrieEngine::prune_detached() {
  detached_count_ = 0;
  std::size_t w = 0;
  for (std::size_t i = 0; i < attached_.size(); ++i) {
    if (attached_[i].detached) continue;
    if (w != i) {
      attached_[w] = std::move(attached_[i]);
      attached_index_.at(attached_[w].pid) = static_cast<std::uint32_t>(w);
    }
    ++w;
  }
  // Range erase, not resize: Attached has no default constructor (resize
  // would demand one for its growth path even though this only shrinks).
  attached_.erase(attached_.begin() + static_cast<std::ptrdiff_t>(w),
                  attached_.end());
}

void ValkyrieEngine::infer_attachment(Attached& a,
                                      std::vector<ActuatorCommand>& commands) {
  // One summary per process per epoch; both detectors share it, so
  // feature extraction and statistics assembly happen exactly once.
  const ml::WindowSummary summary = sys_.window_summary(a.pid);
  const ml::Inference inference = fault_plane_ == nullptr
                                      ? a.stream.infer(detector_, summary)
                                      : guarded_infer(a, summary);
  finish_attachment(a, &summary, inference, commands);
}

ml::Inference ValkyrieEngine::sanitize(ml::Inference inference) noexcept {
  if (inference != ml::Inference::kBenign &&
      inference != ml::Inference::kMalicious &&
      inference != ml::Inference::kInvalid) {
    health_sanitized_.fetch_add(1, std::memory_order_relaxed);
    return ml::Inference::kInvalid;
  }
  return inference;
}

ml::Inference ValkyrieEngine::guarded_infer(Attached& a,
                                            const ml::WindowSummary& summary) {
  const std::uint64_t streak = sys_.invalid_streak(a.pid);
  if (streak > fault_cfg_.staleness_budget) {
    // Telemetry has been invalid past the staleness budget: the engine
    // goes blind on this slot — no detector call (the summary is stale
    // anyway), an explicit kInvalid downstream.
    health_blind_.fetch_add(1, std::memory_order_relaxed);
    return ml::Inference::kInvalid;
  }
  if (streak > 0) {
    // Coast: the summary is the last valid epoch's; the streaming verdict
    // re-evaluates over the evidence it already has (vote detectors fold
    // nothing new and compare thresholds, O(1)).
    health_coasted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (summary.stale_mask != 0) {
    // Partial-plane epoch: the newest sample committed with quarantined
    // columns substituted by their running means (zero z-scores). The
    // inference proceeds on the degraded plane — counted, not skipped.
    health_masked_.fetch_add(1, std::memory_order_relaxed);
  }
  try {
    return sanitize(a.stream.infer(detector_, summary));
  } catch (...) {
    // Detector exception containment: this slot degrades to an explicit
    // invalid inference instead of aborting the epoch. mark_observed keeps
    // the faulted measurement(s) from being re-scored — and re-throwing,
    // deterministically, forever — on every subsequent epoch.
    health_detector_faults_.fetch_add(1, std::memory_order_relaxed);
    a.stream.mark_observed(summary.count);
    return ml::Inference::kInvalid;
  }
}

void ValkyrieEngine::finish_attachment(Attached& a,
                                       const ml::WindowSummary* summary,
                                       ml::Inference inference,
                                       std::vector<ActuatorCommand>& commands) {
  std::optional<ml::Inference> terminal;
  if (a.terminal_detector != nullptr &&
      a.monitor.measurements() >= a.monitor.config().required_measurements) {
    // StreamingInference catches up on any epochs it was not consulted
    // for, so the first terminable-state query pays one linear pass and
    // every subsequent epoch is O(1).
    ml::WindowSummary assembled;
    if (summary == nullptr) {
      assembled = sys_.window_summary(a.pid);
      summary = &assembled;
    }
    if (fault_plane_ == nullptr) {
      terminal = a.terminal_stream.infer(*a.terminal_detector, *summary);
    } else {
      // The terminal detector gets the same containment as the per-epoch
      // one: a throw yields kInvalid (the monitor stays terminable until a
      // valid epoch decides).
      try {
        terminal = sanitize(
            a.terminal_stream.infer(*a.terminal_detector, *summary));
      } catch (...) {
        health_detector_faults_.fetch_add(1, std::memory_order_relaxed);
        a.terminal_stream.mark_observed(summary->count);
        terminal = ml::Inference::kInvalid;
      }
    }
  }
  const ValkyrieMonitor::PlannedAction planned =
      a.monitor.plan(a.pid, inference, terminal);
  a.last_action = planned.action;
  if (planned.command.kind != ActuatorCommand::Kind::kNone) {
    commands.push_back(planned.command);
  }
}

// Serial commit phase: apply the batched responses once the shards have
// joined. Every command targets only its own process's state (weights,
// caps, liveness), so the committed state is independent of drain order —
// the fused schedule drains in live-slot order, the split schedule in
// attachment order, and both land exactly where the sequential engine
// does, before the next epoch's workload execution (Eq. 3 timing).
void ValkyrieEngine::commit_shard_commands() {
  if (fault_plane_ == nullptr && retry_.empty()) {
    // Fault-free fast path: exactly the seed behaviour, no plane draws, no
    // retry bookkeeping, no allocation.
    for (const std::vector<ActuatorCommand>& buf : shard_commands_) {
      for (const ActuatorCommand& cmd : buf) cmd.apply(sys_);
    }
    return;
  }
  // Hardened path. The epoch counter has already advanced (end_epoch ran),
  // so every mode keys the plane's transient-failure schedule and the
  // backoff deadlines on the same value. Each process plans at most one
  // command per epoch, so per-pid outcomes are independent of the order
  // the shards emitted them in.
  const std::uint64_t epoch = sys_.current_epoch();
  for (const std::vector<ActuatorCommand>& buf : shard_commands_) {
    for (const ActuatorCommand& cmd : buf) commit_command(cmd, epoch);
  }
  process_retries(epoch);
}

std::size_t ValkyrieEngine::find_retry(sim::ProcessId pid) const noexcept {
  const auto it = std::lower_bound(
      retry_.begin(), retry_.end(), pid,
      [](const PendingRetry& e, sim::ProcessId p) { return e.pid < p; });
  if (it != retry_.end() && it->pid == pid) {
    return static_cast<std::size_t>(it - retry_.begin());
  }
  return retry_.size();
}

bool ValkyrieEngine::attempt_command(ActuatorCommand::Kind kind,
                                     sim::ProcessId pid, double delta,
                                     std::uint64_t epoch) {
  if (fault_plane_ != nullptr) {
    // Transient faults drop any command kind this epoch; a permanently
    // dead channel blocks only throttling — kills travel the process-
    // termination channel, which is what gives escalation a way out.
    if (fault_plane_->actuator_fails(epoch, pid) ||
        (kind != ActuatorCommand::Kind::kKill &&
         fault_plane_->actuator_dead(pid))) {
      health_actuator_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  try {
    if (kind == ActuatorCommand::Kind::kKill) {
      sys_.kill(pid);
      return true;
    }
    // Resolve the actuator through the attachment at apply time: retry
    // entries never hold pointers, so a snapshot-restored table re-binds
    // to the restored actuator objects automatically.
    Actuator* const act =
        attached_[static_cast<std::size_t>(attached_index_.at(pid))]
            .monitor.actuator();
    if (kind == ActuatorCommand::Kind::kApply) {
      act->apply(sys_, pid, delta);
    } else {
      act->reset(sys_, pid);
    }
    return true;
  } catch (...) {
    // A genuinely throwing actuator is contained exactly like an injected
    // failure: the command enters the retry ladder instead of aborting.
    health_actuator_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

namespace {

/// Exponential backoff, capped at 64 epochs: 1, 2, 4, ... after the n-th
/// consecutive failure.
[[nodiscard]] std::uint64_t backoff_epochs(std::uint32_t failures) noexcept {
  return 1ull << std::min<std::uint32_t>(failures - 1, 6);
}

}  // namespace

void ValkyrieEngine::commit_command(const ActuatorCommand& cmd,
                                    std::uint64_t epoch) {
  using Kind = ActuatorCommand::Kind;
  if (cmd.kind == Kind::kNone) return;
  const auto rank = [](Kind k) noexcept {
    return k == Kind::kKill ? 3 : k == Kind::kReset ? 2 : 1;
  };
  const std::size_t idx = find_retry(cmd.pid);
  if (idx < retry_.size()) {
    // Coalesce with the pending command for this pid: kill supersedes
    // everything, reset supersedes apply, apply deltas accumulate; a
    // weaker fresh command folds into the stronger pending one. Fresh
    // intent also overrides the backoff deadline — attempt now.
    PendingRetry& entry = retry_[idx];
    if (rank(cmd.kind) > rank(entry.kind)) {
      entry.kind = cmd.kind;
      entry.delta = cmd.kind == Kind::kApply ? cmd.delta : 0.0;
    } else if (cmd.kind == Kind::kApply && entry.kind == Kind::kApply) {
      entry.delta += cmd.delta;
    }
    health_retries_.fetch_add(1, std::memory_order_relaxed);
    if (attempt_command(entry.kind, entry.pid, entry.delta, epoch)) {
      retry_.erase(retry_.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      ++entry.failures;
      entry.next_epoch = epoch + backoff_epochs(entry.failures);
    }
    return;
  }
  if (attempt_command(cmd.kind, cmd.pid, cmd.delta, epoch)) return;
  // First failure: enter the ladder, next attempt at the next epoch.
  PendingRetry entry;
  entry.pid = cmd.pid;
  entry.kind = cmd.kind;
  entry.delta = cmd.kind == Kind::kApply ? cmd.delta : 0.0;
  entry.failures = 1;
  entry.next_epoch = epoch + backoff_epochs(1);
  const auto pos = std::lower_bound(
      retry_.begin(), retry_.end(), entry.pid,
      [](const PendingRetry& e, sim::ProcessId p) { return e.pid < p; });
  retry_.insert(pos, entry);
}

void ValkyrieEngine::process_retries(std::uint64_t epoch) {
  using Kind = ActuatorCommand::Kind;
  if (retry_.empty()) return;
  // One stable in-place pass in pid order (deterministic across modes):
  // purge, escalate, retry due entries, reschedule or drop.
  std::size_t w = 0;
  for (std::size_t i = 0; i < retry_.size(); ++i) {
    PendingRetry entry = retry_[i];
    // Death settles the command; detach abandons it (matching detach()'s
    // contract that pending restrictions are discarded).
    if (!sys_.is_live(entry.pid) || !is_attached(entry.pid)) continue;
    bool keep = true;
    if (entry.next_epoch <= epoch) {
      if (entry.kind != Kind::kKill &&
          entry.failures >= fault_cfg_.escalate_after) {
        // The throttle channel has failed often enough: escalate up the
        // response hierarchy — terminate instead of keeping a possibly
        // malicious process unrestrained.
        entry.kind = Kind::kKill;
        entry.delta = 0.0;
        health_escalations_.fetch_add(1, std::memory_order_relaxed);
      }
      health_retries_.fetch_add(1, std::memory_order_relaxed);
      if (attempt_command(entry.kind, entry.pid, entry.delta, epoch)) {
        keep = false;
      } else {
        ++entry.failures;
        if (entry.kind == Kind::kKill &&
            entry.failures > fault_cfg_.max_kill_retries) {
          // Even the kill channel won't take it: drop the command and
          // count it — the caller can read fault_health().unrecoverable
          // and decide (the supervisor treats a rising count as a reason
          // to restore from checkpoint).
          health_unrecoverable_.fetch_add(1, std::memory_order_relaxed);
          keep = false;
        } else {
          entry.next_epoch = epoch + backoff_epochs(entry.failures);
        }
      }
    }
    if (keep) retry_[w++] = entry;
  }
  retry_.erase(retry_.begin() + static_cast<std::ptrdiff_t>(w), retry_.end());
}

void ValkyrieEngine::arm_faults(const fault::FaultPlane* plane) {
  // The system validates the plane's rates (and throws) before anything is
  // armed, so a degenerate config leaves the engine untouched.
  sys_.arm_sensor_faults(plane);
  fault_plane_ = plane;
}

ValkyrieEngine::FaultHealth ValkyrieEngine::fault_health() const noexcept {
  FaultHealth h;
  h.coasted = health_coasted_.load(std::memory_order_relaxed);
  h.blind = health_blind_.load(std::memory_order_relaxed);
  h.masked = health_masked_.load(std::memory_order_relaxed);
  h.detector_faults =
      health_detector_faults_.load(std::memory_order_relaxed);
  h.sanitized = health_sanitized_.load(std::memory_order_relaxed);
  h.batch_fallbacks =
      health_batch_fallbacks_.load(std::memory_order_relaxed);
  h.actuator_failures =
      health_actuator_failures_.load(std::memory_order_relaxed);
  h.retries = health_retries_.load(std::memory_order_relaxed);
  h.escalations = health_escalations_.load(std::memory_order_relaxed);
  h.unrecoverable = health_unrecoverable_.load(std::memory_order_relaxed);
  return h;
}

std::size_t ValkyrieEngine::live_attached_count() const {
  // Walk the live list, not the attachment table: under churn the table
  // accumulates one entry per process ever attached, while the live list
  // stays at the live population. (Reading live_processes here also folds
  // any kill marked by this epoch's commands into the compaction before
  // the caller sees the count.)
  std::size_t live = 0;
  for (const sim::ProcessId pid : sys_.live_processes()) {
    if (is_attached(pid)) ++live;
  }
  return live;
}

std::size_t ValkyrieEngine::step() {
  ++step_tag_;
  if (detached_count_ != 0) prune_detached();
  switch (mode_) {
    case StepMode::kSplit:
      return step_split();
    case StepMode::kBatched:
      return step_batched();
    case StepMode::kFused:
      break;
  }
  return step_fused();
}

std::size_t ValkyrieEngine::step_fused() {
  // Serial open phase: CFS share snapshot; the live list and pid -> slot
  // remap are frozen until the epoch closes, so slot i below is
  // live[i] for the whole dispatch.
  sys_.begin_epoch();
  const std::span<const sim::ProcessId> live = sys_.live_processes();

  for (std::vector<ActuatorCommand>& buf : shard_commands_) buf.clear();
  // The fused dispatch shards over live slots, not attachments, so a single
  // shard can own up to one ceil-chunk of *processes* worth of attachments
  // when they cluster. Re-check capacity against that bound (a no-op in
  // steady state; live counts only shrink between attaches).
  if (!attached_.empty() && !live.empty()) {
    reserve_shard_buffers(
        std::min(shard_quota(live.size()), attached_.size()));
  }

  // With the plane-major fold armed, step_slot only STAGES each slot's
  // feature vector into the plane — the shard must step its whole range,
  // fold it in one cross-slot Welford pass, and only then read summaries.
  // The per-slot finished flags live in the batched schedule's scratch.
  const bool fold = sys_.plane_major_fold_enabled();
  if (fold && batch_finished_.size() < live.size()) {
    batch_finished_.resize(live.size());
  }

  // One fused shard dispatch: simulate the process, then consume its fresh
  // HPC sample for inference + the monitor decision while it is still hot,
  // emitting side effects as commands into the shard's buffer.
  const auto fused_range = [&](std::size_t shard, std::size_t begin,
                               std::size_t end) {
    std::vector<ActuatorCommand>& commands = shard_commands_[shard];
    if (fold) {
      // Step-all / fold / infer-all. The sample is no longer L1-hot when
      // the inference pass re-reads it, but the fold kernel's cross-slot
      // vectorization repays the refetch. Bit-identical to the interleaved
      // loop: per-slot work is independent and the fold preserves the
      // scalar accumulation order.
      for (std::size_t slot = begin; slot < end; ++slot) {
        batch_finished_[slot] = sys_.step_slot(slot) ? 1 : 0;
      }
      sys_.fold_plane_range(begin, end);
      for (std::size_t slot = begin; slot < end; ++slot) {
        const sim::ProcessId pid = live[slot];
        const std::uint32_t* idx = attached_index_.find(pid);
        if (idx == nullptr) continue;
        Attached& a = attached_[*idx];
        a.last_action = ValkyrieMonitor::Action::kNone;
        a.last_action_step = step_tag_;
        if (batch_finished_[slot] != 0) continue;
        infer_attachment(a, commands);
      }
      return;
    }
    for (std::size_t slot = begin; slot < end; ++slot) {
      const sim::ProcessId pid = live[slot];
      const bool finished = sys_.step_slot(slot);
      const std::uint32_t* idx = attached_index_.find(pid);
      if (idx == nullptr) continue;
      Attached& a = attached_[*idx];
      a.last_action = ValkyrieMonitor::Action::kNone;
      a.last_action_step = step_tag_;
      // A process that completed this epoch gets no inference — exactly as
      // the split schedule's inference pass sees it (already dead).
      if (finished) continue;
      infer_attachment(a, commands);
    }
  };

  // On a shard exception the commands planned so far are still committed
  // before the rethrow — a monitor that recorded a decision (e.g.
  // kTerminated) must never have its side effect dropped, or engine and
  // system state diverge. abort_epoch still retires completed processes
  // but does not count the epoch.
  try {
    if (pool_ != nullptr) {
      // n <= 1 runs inline inside the pool, which counts it — so the
      // schedule-run statistic stays exact for degenerate epochs too.
      pool_->parallel_for_shards(live.size(), fused_range);
    } else if (!live.empty()) {
      ++inline_runs_;
      fused_range(0, 0, live.size());
    }
  } catch (...) {
    sys_.abort_epoch();
    commit_shard_commands();
    throw;
  }
  sys_.end_epoch();
  commit_shard_commands();

  return live_attached_count();
}

std::size_t ValkyrieEngine::step_batched() {
  // Re-arm the plane sections every step: a detector whose declared needs
  // widened since construction (e.g. StatisticalDetector::set_vote_window
  // switching it onto the raw-window default adapter) must find its
  // sections maintained, not silently read never-written rows. Widening
  // an armed plane is three flag ORs; narrowing never happens.
  sys_.enable_feature_plane(detector_.plane_sections());
  // Serial open phase, exactly as fused: CFS share snapshot; slot layout
  // frozen for the whole dispatch.
  sys_.begin_epoch();
  const std::span<const sim::ProcessId> live = sys_.live_processes();

  for (std::vector<ActuatorCommand>& buf : shard_commands_) buf.clear();
  if (!attached_.empty() && !live.empty()) {
    reserve_shard_buffers(
        std::min(shard_quota(live.size()), attached_.size()));
  }
  // Per-slot scratch (finished flags + batch outputs), sized to the live
  // list; capacity only grows, so the steady-state epoch allocates nothing.
  if (batch_finished_.size() < live.size()) {
    batch_finished_.resize(live.size());
    batch_votes_.resize(live.size());
    batch_infer_.resize(live.size(), ml::Inference::kBenign);
  }
  const std::optional<double> fraction = detector_.vote_fraction();

  // One shard dispatch, three phases per shard over its contiguous slot
  // range: (A) simulate every slot — step_slot fills the shard's feature-
  // plane segment as a side effect; (B) ONE batch detector call over that
  // segment instead of one virtual call per process; (C) fold the batch
  // results into the per-attachment running counts and plan the responses.
  const auto batched_range = [&](std::size_t shard, std::size_t begin,
                                 std::size_t end) {
    std::vector<ActuatorCommand>& commands = shard_commands_[shard];
    for (std::size_t slot = begin; slot < end; ++slot) {
      batch_finished_[slot] = sys_.step_slot(slot) ? 1 : 0;
    }
    // With the plane-major fold armed, step_slot only STAGED each slot's
    // feature vector; fold the shard's whole range in one cross-slot
    // Welford pass before the batch kernel (or any summary) reads the
    // plane's stats rows. A no-op when the fold is off.
    sys_.fold_plane_range(begin, end);

    const std::size_t width = end - begin;
    const ml::SummaryMatrixView plane = sys_.feature_plane();
    const ml::SummaryMatrixView segment = plane.slice(begin, end);
    // With the fault plane armed the batch kernels can throw (a faulted
    // detector rejects the whole segment): contain it and drop this
    // shard's segment to the per-slot scalar path, which re-applies the
    // per-column fault decisions deterministically — so the faulted run
    // stays bit-identical to the fused schedule's.
    bool batch_ok = true;
    try {
      if (fraction) {
        detector_.measurement_votes(
            segment.newest_view(),
            std::span<std::uint8_t>(batch_votes_).subspan(begin, width));
      } else {
        detector_.infer_batch(
            segment,
            std::span<ml::Inference>(batch_infer_).subspan(begin, width));
      }
    } catch (...) {
      if (fault_plane_ == nullptr) throw;
      batch_ok = false;
      health_batch_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }

    for (std::size_t slot = begin; slot < end; ++slot) {
      const sim::ProcessId pid = live[slot];
      const std::uint32_t* idx = attached_index_.find(pid);
      if (idx == nullptr) continue;
      Attached& a = attached_[*idx];
      a.last_action = ValkyrieMonitor::Action::kNone;
      a.last_action_step = step_tag_;
      // A process that completed this epoch gets no inference — exactly as
      // the fused and split schedules see it.
      if (batch_finished_[slot] != 0) continue;
      ml::Inference inference;
      if (!batch_ok) {
        inference = guarded_infer(a, sys_.window_summary(a.pid));
      } else if (fraction) {
        // The plane's dense count row, not the accumulator array: phase C
        // must not re-stream 300-byte accumulator strides per slot.
        const std::size_t count = plane.counts[slot];
        if (fault_plane_ != nullptr &&
            sys_.invalid_streak(a.pid) > fault_cfg_.staleness_budget) {
          // Past the staleness budget the fused path goes blind without
          // touching the stream; mirror it exactly (the batch vote for
          // this slot was computed over stale bits and is discarded).
          health_blind_.fetch_add(1, std::memory_order_relaxed);
          inference = ml::Inference::kInvalid;
        } else if (a.stream.can_fold(count)) {
          if (fault_plane_ != nullptr &&
              sys_.newest_stale_mask(slot) != 0) {
            // Mirror guarded_infer's partial-plane accounting: the folded
            // vote was computed over a column with substituted features.
            health_masked_.fetch_add(1, std::memory_order_relaxed);
          }
          inference =
              a.stream.fold_vote(batch_votes_[slot] != 0, count, *fraction);
        } else if (fault_plane_ != nullptr) {
          // Quarantined (stale count), mid-run catch-up or episode shrink
          // under an armed plane: the guarded scalar path keeps coast
          // accounting and containment identical to the fused schedule.
          inference = guarded_infer(a, sys_.window_summary(a.pid));
        } else {
          // Mid-run attach catch-up or episode shrink: the scalar
          // streaming path handles it (one-time cost per attachment).
          inference = a.stream.infer(detector_, sys_.window_summary(a.pid));
        }
      } else {
        inference = batch_infer_[slot];
        if (fault_plane_ != nullptr) {
          const std::uint64_t streak = sys_.invalid_streak(a.pid);
          if (streak > fault_cfg_.staleness_budget) {
            health_blind_.fetch_add(1, std::memory_order_relaxed);
            inference = ml::Inference::kInvalid;
          } else {
            if (streak > 0) {
              health_coasted_.fetch_add(1, std::memory_order_relaxed);
            }
            if (sys_.newest_stale_mask(slot) != 0) {
              health_masked_.fetch_add(1, std::memory_order_relaxed);
            }
            inference = sanitize(inference);
          }
        }
      }
      finish_attachment(a, nullptr, inference, commands);
    }
  };

  try {
    if (pool_ != nullptr) {
      pool_->parallel_for_shards(live.size(), batched_range);
    } else if (!live.empty()) {
      ++inline_runs_;
      batched_range(0, 0, live.size());
    }
  } catch (...) {
    sys_.abort_epoch();
    commit_shard_commands();
    throw;
  }
  sys_.end_epoch();
  commit_shard_commands();

  return live_attached_count();
}

std::size_t ValkyrieEngine::step_split() {
  // Shard phase 1: simulate the epoch (workloads, HPC capture, window
  // statistics) across the pool. Without a pool the phase runs inline on
  // this thread — counted here so schedule_run_count() reports the split
  // schedule's two phases per epoch regardless of worker count.
  if (pool_ == nullptr && !sys_.live_processes().empty()) ++inline_runs_;
  sys_.run_epoch(pool_.get());

  for (std::vector<ActuatorCommand>& buf : shard_commands_) buf.clear();

  // Shard phase 2: streaming inference + monitor decisions. Each shard
  // touches only its own attachments' state and reads the system, emitting
  // side effects as commands into its own buffer.
  const auto infer_range = [&](std::size_t shard, std::size_t begin,
                               std::size_t end) {
    std::vector<ActuatorCommand>& commands = shard_commands_[shard];
    for (std::size_t i = begin; i < end; ++i) {
      Attached& a = attached_[i];
      a.last_action = ValkyrieMonitor::Action::kNone;
      a.last_action_step = step_tag_;
      if (!sys_.is_live(a.pid)) continue;
      infer_attachment(a, commands);
    }
  };
  try {
    if (pool_ != nullptr) {
      pool_->parallel_for_shards(attached_.size(), infer_range);
    } else if (!attached_.empty()) {
      ++inline_runs_;
      infer_range(0, 0, attached_.size());
    }
  } catch (...) {
    commit_shard_commands();
    throw;
  }
  commit_shard_commands();

  return live_attached_count();
}

void ValkyrieEngine::run(std::size_t epochs) {
  sys_.reserve_history(epochs);
  for (std::size_t i = 0; i < epochs; ++i) step();
}

const ValkyrieEngine::Attached& ValkyrieEngine::attachment(
    sim::ProcessId pid) const {
  const std::uint32_t* idx = attached_index_.find(pid);
  if (idx == nullptr) {
    throw std::out_of_range("ValkyrieEngine: process not attached");
  }
  return attached_[*idx];
}

const ValkyrieMonitor& ValkyrieEngine::monitor(sim::ProcessId pid) const {
  return attachment(pid).monitor;
}

ValkyrieMonitor::Action ValkyrieEngine::last_action(sim::ProcessId pid) const {
  const Attached& a = attachment(pid);
  // The fused schedule never visits attachments of already-dead processes,
  // so an action from an older step reads as "nothing happened this epoch".
  return a.last_action_step == step_tag_ ? a.last_action
                                         : ValkyrieMonitor::Action::kNone;
}

// --- Snapshot/restore --------------------------------------------------------

snapshot::MonitorImage ValkyrieMonitor::snapshot_state() const {
  snapshot::MonitorImage image;
  image.required_measurements = config_.required_measurements;
  image.episode_scoped = config_.episode_scoped_measurements;
  image.reset_metrics_on_normal = config_.threat.reset_metrics_on_normal;
  image.actuator = snapshot::poly_image(*actuator_);
  image.threat = threat_.threat();
  image.penalty = threat_.penalty();
  image.compensation = threat_.compensation();
  image.threat_state = static_cast<std::uint8_t>(threat_.state());
  image.measurements = measurements_;
  image.state = static_cast<std::uint8_t>(state_);
  return image;
}

ValkyrieMonitor ValkyrieMonitor::restore_from(
    const snapshot::MonitorImage& image, const ValkyrieConfig& base,
    const snapshot::ActuatorRegistry& registry) {
  ValkyrieConfig config = base;
  config.required_measurements =
      static_cast<std::size_t>(image.required_measurements);
  config.episode_scoped_measurements = image.episode_scoped;
  config.threat.reset_metrics_on_normal = image.reset_metrics_on_normal;
  ValkyrieMonitor monitor(config, registry.load(image.actuator));
  monitor.threat_.restore(image.threat, image.penalty, image.compensation,
                          static_cast<ProcessState>(image.threat_state));
  monitor.measurements_ = static_cast<std::size_t>(image.measurements);
  monitor.state_ = static_cast<ProcessState>(image.state);
  return monitor;
}

snapshot::EngineImage ValkyrieEngine::snapshot_state() const {
  snapshot::EngineImage image;
  image.detector_hash = detector_.state_hash();
  image.step_tag = step_tag_;
  image.attachments.reserve(attached_.size() - detached_count_);
  for (const Attached& a : attached_) {
    // Tombstones are skipped: the captured table equals the post-prune
    // table the uninterrupted run converges to at its next step, which is
    // exactly what a restored engine's first step must start from.
    if (a.detached) continue;
    snapshot::AttachmentImage att;
    att.pid = a.pid;
    att.monitor = a.monitor.snapshot_state();
    att.has_terminal = a.terminal_detector != nullptr;
    att.terminal_hash =
        att.has_terminal ? a.terminal_detector->state_hash() : 0;
    att.stream_malicious = a.stream.malicious_count();
    att.stream_counted = a.stream.counted();
    att.terminal_malicious = a.terminal_stream.malicious_count();
    att.terminal_counted = a.terminal_stream.counted();
    // Canonicalize to the observable view (see AttachmentImage): schedules
    // differ in whether they record kNone actions, so only a real action
    // from THIS step survives into the snapshot.
    const bool acted = a.last_action_step == step_tag_ &&
                       a.last_action != ValkyrieMonitor::Action::kNone;
    att.last_action = static_cast<std::uint8_t>(
        acted ? a.last_action : ValkyrieMonitor::Action::kNone);
    att.last_action_step = acted ? a.last_action_step : 0;
    image.attachments.push_back(std::move(att));
  }
  // The retry table is real state — a restored run must resume the same
  // backoff schedule. Already pid-sorted (an invariant commit maintains
  // precisely so snapshots are byte-identical across StepModes).
  image.retries.reserve(retry_.size());
  for (const PendingRetry& r : retry_) {
    snapshot::RetryImage ri;
    ri.pid = r.pid;
    ri.kind = static_cast<std::uint8_t>(r.kind);
    ri.delta = r.delta;
    ri.failures = r.failures;
    ri.next_epoch = r.next_epoch;
    image.retries.push_back(ri);
  }
  return image;
}

void ValkyrieEngine::restore_from(const snapshot::EngineImage& image,
                                  const snapshot::RestoreContext& ctx) {
  using util::SerialError;
  if (image.detector_hash != detector_.state_hash()) {
    throw SerialError(SerialError::Code::kIncompatible,
                      "restore: detector fingerprint mismatch");
  }

  // Stage the whole attachment table (monitor reconstruction loads
  // actuators and can throw) before committing anything.
  std::vector<Attached> staged;
  staged.reserve(image.attachments.size());
  for (const snapshot::AttachmentImage& att : image.attachments) {
    if (att.monitor.state >
            static_cast<std::uint8_t>(ProcessState::kTerminated) ||
        att.monitor.threat_state >
            static_cast<std::uint8_t>(ProcessState::kTerminated) ||
        att.last_action >
            static_cast<std::uint8_t>(ValkyrieMonitor::Action::kTerminated) ||
        att.monitor.required_measurements == 0) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: attachment fields out of range");
    }
    const ml::Detector* terminal = nullptr;
    if (att.has_terminal) {
      if (ctx.terminal_detector == nullptr ||
          ctx.terminal_detector->state_hash() != att.terminal_hash) {
        throw SerialError(SerialError::Code::kIncompatible,
                          "restore: terminal detector fingerprint mismatch");
      }
      terminal = ctx.terminal_detector;
    }
    Attached a{att.pid,
               ValkyrieMonitor::restore_from(att.monitor, ctx.base_config,
                                             ctx.actuators),
               terminal,
               {},
               {},
               static_cast<ValkyrieMonitor::Action>(att.last_action),
               att.last_action_step};
    a.stream.restore(static_cast<std::size_t>(att.stream_malicious),
                     static_cast<std::size_t>(att.stream_counted));
    a.terminal_stream.restore(
        static_cast<std::size_t>(att.terminal_malicious),
        static_cast<std::size_t>(att.terminal_counted));
    staged.push_back(std::move(a));
  }
  util::PidMap<std::uint32_t> index;
  index.reserve(staged.size());
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (!index.insert(staged[i].pid, static_cast<std::uint32_t>(i)).second) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: duplicate attachment pid");
    }
  }

  std::vector<PendingRetry> staged_retries;
  staged_retries.reserve(image.retries.size());
  for (const snapshot::RetryImage& r : image.retries) {
    if (r.kind == static_cast<std::uint8_t>(ActuatorCommand::Kind::kNone) ||
        r.kind > static_cast<std::uint8_t>(ActuatorCommand::Kind::kKill) ||
        r.failures == 0 ||
        (!staged_retries.empty() && r.pid <= staged_retries.back().pid)) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: retry table entry out of range or unsorted");
    }
    PendingRetry entry;
    entry.pid = r.pid;
    entry.kind = static_cast<ActuatorCommand::Kind>(r.kind);
    entry.delta = r.delta;
    entry.failures = r.failures;
    entry.next_epoch = r.next_epoch;
    staged_retries.push_back(entry);
  }

  // Commit.
  attached_ = std::move(staged);
  attached_index_ = std::move(index);
  retry_ = std::move(staged_retries);
  step_tag_ = image.step_tag;
  detached_count_ = 0;
  reserve_shard_buffers(shard_quota(attached_.size()));
}

}  // namespace valkyrie::core
