#include "util/stats.hpp"

#include <cassert>
#include <cmath>

namespace valkyrie::util {

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs, double floor) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(std::max(x, floor));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile_of(std::span<const double> xs, double p) {
  assert(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace valkyrie::util
