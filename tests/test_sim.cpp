#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/platform.hpp"
#include "sim/resources.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"
#include "sim/workload.hpp"

namespace valkyrie::sim {
namespace {

/// Minimal workload for system tests: progress == cpu share each epoch.
class StubWorkload final : public Workload {
 public:
  explicit StubWorkload(double work_epochs = 1e9, bool attack = false)
      : work_(work_epochs), attack_(attack) {}

  [[nodiscard]] std::string_view name() const override { return "stub"; }
  [[nodiscard]] bool is_attack() const override { return attack_; }
  [[nodiscard]] std::string_view progress_units() const override {
    return "units";
  }
  StepResult run_epoch(const ResourceShares& shares,
                       EpochContext& ctx) override {
    StepResult r;
    r.progress = shares.cpu * memory_progress_multiplier(shares.mem) *
                 fs_progress_multiplier(shares.fs) *
                 network_progress_multiplier(shares.net);
    progress_ += r.progress;
    r.finished = progress_ >= work_;
    r.hpc[hpc::Event::kInstructions] = 100.0 * shares.cpu;
    last_ctx_epoch_ = ctx.epoch;
    return r;
  }
  [[nodiscard]] double total_progress() const override { return progress_; }

  std::uint64_t last_ctx_epoch_ = 0;

 private:
  double work_;
  bool attack_;
  double progress_ = 0.0;
};

TEST(ResourceModel, CpuMultiplierMatchesTableII) {
  EXPECT_DOUBLE_EQ(cpu_progress_multiplier(1.0), 1.0);
  // Table II: 90% -> ~8.7% slowdown, 50% -> ~45.2%, 1% -> ~99.7%.
  EXPECT_NEAR(cpu_progress_multiplier(0.9), 0.913, 0.03);
  EXPECT_NEAR(cpu_progress_multiplier(0.5), 0.548, 0.07);
  EXPECT_NEAR(cpu_progress_multiplier(0.01), 0.0027, 0.001);
  EXPECT_DOUBLE_EQ(cpu_progress_multiplier(0.0), 0.0);
}

TEST(ResourceModel, CpuMultiplierMonotone) {
  double prev = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.01) {
    const double m = cpu_progress_multiplier(s);
    EXPECT_GE(m, prev - 1e-12);
    prev = m;
  }
}

TEST(ResourceModel, MemoryMultiplierSharpNonLinear) {
  EXPECT_DOUBLE_EQ(memory_progress_multiplier(1.0), 1.0);
  // Table II: 93.6% residency -> >99.9% slowdown.
  EXPECT_LT(memory_progress_multiplier(0.936), 1e-3);
  EXPECT_LT(memory_progress_multiplier(0.894), memory_progress_multiplier(0.936));
  EXPECT_GT(memory_progress_multiplier(0.99), 0.1);
}

TEST(ResourceModel, NetworkMultiplierMatchesTableII) {
  EXPECT_DOUBLE_EQ(network_progress_multiplier(1.0), 1.0);
  EXPECT_NEAR(network_progress_multiplier(0.5), 0.886, 0.01);
  EXPECT_NEAR(network_progress_multiplier(1e-3), 0.251, 0.01);
  EXPECT_NEAR(network_progress_multiplier(1e-6), 2.2e-4, 1e-4);
}

TEST(ResourceModel, FsMultiplierProportional) {
  EXPECT_DOUBLE_EQ(fs_progress_multiplier(0.5), 0.5);
  EXPECT_DOUBLE_EQ(fs_progress_multiplier(1.5), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(fs_progress_multiplier(-1.0), 0.0);
}

TEST(Scheduler, DefaultShareIsNormalizedToOne) {
  CfsScheduler sched;
  sched.add_process(0);
  EXPECT_DOUBLE_EQ(sched.weight_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.normalized_share(0), 1.0);
}

TEST(Scheduler, Eq8DemotionAndPromotion) {
  SchedulerConfig cfg;
  cfg.gamma = 0.1;
  CfsScheduler sched(cfg);
  sched.add_process(0);
  sched.apply_threat_delta(0, 1.0);  // s *= 0.9
  EXPECT_NEAR(sched.weight_factor(0), 0.9, 1e-12);
  sched.apply_threat_delta(0, 2.0);  // s *= 0.8
  EXPECT_NEAR(sched.weight_factor(0), 0.72, 1e-12);
  sched.apply_threat_delta(0, -2.0);  // s *= 1.2
  EXPECT_NEAR(sched.weight_factor(0), 0.864, 1e-12);
}

TEST(Scheduler, FloorAndCeiling) {
  CfsScheduler sched;
  sched.add_process(0);
  sched.apply_threat_delta(0, 1000.0);
  EXPECT_DOUBLE_EQ(sched.weight_factor(0),
                   sched.config().min_share_fraction);
  sched.apply_threat_delta(0, -1e9);
  EXPECT_DOUBLE_EQ(sched.weight_factor(0), 1.0);
}

TEST(Scheduler, ResetRestoresDefault) {
  CfsScheduler sched;
  sched.add_process(0);
  sched.apply_threat_delta(0, 5.0);
  sched.reset_weight(0);
  EXPECT_DOUBLE_EQ(sched.weight_factor(0), 1.0);
}

TEST(Scheduler, TimesliceProportionalToWeight) {
  CfsScheduler sched;
  sched.add_process(0);
  sched.add_process(1);
  const double t0 = sched.timeslice_ms(0);
  sched.apply_threat_delta(0, 5.0);  // halve-ish the weight
  EXPECT_LT(sched.timeslice_ms(0), t0);
  // Eq. 7: absolute shares sum to <= 1 across processes + background.
  EXPECT_LE(sched.absolute_share(0) + sched.absolute_share(1), 1.0);
}

TEST(Scheduler, UnknownPidThrows) {
  CfsScheduler sched;
  EXPECT_THROW((void)sched.weight_factor(7), std::out_of_range);
  EXPECT_THROW(sched.apply_threat_delta(7, 1.0), std::out_of_range);
}

TEST(Scheduler, NonPositiveMinShareRejected) {
  SchedulerConfig cfg;
  cfg.min_share_fraction = 0.0;
  EXPECT_THROW(CfsScheduler{cfg}, std::invalid_argument);
}

TEST(Scheduler, DemotingOneRaisesOthersShare) {
  CfsScheduler sched;
  sched.add_process(0);
  sched.add_process(1);
  const double before = sched.absolute_share(1);
  sched.apply_threat_delta(0, 10.0);
  EXPECT_GT(sched.absolute_share(1), before);
}

TEST(System, SpawnRunProgress) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>());
  sys.run_epochs(5);
  EXPECT_EQ(sys.current_epoch(), 5u);
  EXPECT_EQ(sys.epochs_run(pid), 5u);
  EXPECT_NEAR(sys.workload(pid).total_progress(), 5.0, 1e-9);
  EXPECT_EQ(sys.sample_history(pid).size(), 5u);
  EXPECT_DOUBLE_EQ(sys.elapsed_ms(), 500.0);
}

TEST(System, CgroupCpuCapReducesProgress) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>());
  sys.set_cgroup_caps(pid, 0.5, std::nullopt, std::nullopt, std::nullopt);
  sys.run_epoch();
  EXPECT_DOUBLE_EQ(sys.effective_shares(pid).cpu, 0.5);
  EXPECT_NEAR(sys.last_progress(pid), 0.5, 1e-9);
}

TEST(System, SchedulerDemotionReducesEffectiveShare) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>());
  sys.apply_sched_threat_delta(pid, 5.0);
  sys.run_epoch();
  EXPECT_LT(sys.effective_shares(pid).cpu, 1.0);
  sys.reset_sched_weight(pid);
  sys.run_epoch();
  EXPECT_NEAR(sys.effective_shares(pid).cpu, 1.0, 1e-9);
}

TEST(System, EffectiveCpuIsMinOfSchedulerAndCgroup) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>());
  sys.set_cgroup_caps(pid, 0.3, std::nullopt, std::nullopt, std::nullopt);
  sys.apply_sched_threat_delta(pid, 1.0);  // scheduler at ~0.9
  sys.run_epoch();
  EXPECT_NEAR(sys.effective_shares(pid).cpu, 0.3, 1e-9);
}

TEST(System, KillStopsExecution) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>());
  sys.run_epoch();
  sys.kill(pid);
  EXPECT_FALSE(sys.is_live(pid));
  EXPECT_EQ(sys.exit_reason(pid), ExitReason::kKilled);
  sys.run_epoch();
  EXPECT_EQ(sys.epochs_run(pid), 1u);  // no further execution
}

TEST(System, NaturalCompletion) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>(3.0));
  sys.run_epochs(10);
  EXPECT_EQ(sys.exit_reason(pid), ExitReason::kCompleted);
  EXPECT_EQ(sys.epochs_run(pid), 3u);
}

TEST(System, ClearCgroupCapsRestoresDefaults) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>());
  sys.set_cgroup_caps(pid, 0.1, 0.9, 0.5, 0.2);
  sys.clear_cgroup_caps(pid);
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(pid).cpu, 1.0);
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(pid).mem, 1.0);
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(pid).net, 1.0);
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(pid).fs, 1.0);
}

TEST(System, InvalidPidThrows) {
  SimSystem sys;
  EXPECT_THROW((void)sys.is_live(3), std::out_of_range);
  EXPECT_THROW(sys.kill(3), std::out_of_range);
  EXPECT_THROW(sys.spawn(nullptr), std::invalid_argument);
}

TEST(System, LiveProcessList) {
  SimSystem sys;
  const ProcessId a = sys.spawn(std::make_unique<StubWorkload>());
  const ProcessId b = sys.spawn(std::make_unique<StubWorkload>());
  EXPECT_EQ(sys.live_processes().size(), 2u);
  sys.kill(a);
  const std::span<const ProcessId> live = sys.live_processes();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], b);
}

TEST(System, LiveProcessListTracksCompletionAndSpawn) {
  SimSystem sys;
  const ProcessId a = sys.spawn(std::make_unique<StubWorkload>(2.0));
  const ProcessId b = sys.spawn(std::make_unique<StubWorkload>());
  sys.run_epochs(5);  // `a` completes after 2 epochs
  ASSERT_EQ(sys.live_processes().size(), 1u);
  EXPECT_EQ(sys.live_processes()[0], b);
  const ProcessId c = sys.spawn(std::make_unique<StubWorkload>());
  const std::span<const ProcessId> live = sys.live_processes();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], b);
  EXPECT_EQ(live[1], c);
  EXPECT_EQ(sys.exit_reason(a), ExitReason::kCompleted);
}

TEST(System, ThrowingWorkloadDoesNotStaleTheLiveList) {
  // One process completes in the same epoch another throws: the epoch does
  // not complete, but the live list must still drop the finished process,
  // or a retry would re-execute its workload.
  class ThrowingWorkload final : public Workload {
   public:
    [[nodiscard]] std::string_view name() const override { return "throw"; }
    [[nodiscard]] bool is_attack() const override { return false; }
    [[nodiscard]] std::string_view progress_units() const override {
      return "units";
    }
    StepResult run_epoch(const ResourceShares&, EpochContext& ctx) override {
      if (ctx.epoch >= 2) throw std::runtime_error("workload failure");
      return {};
    }
    [[nodiscard]] double total_progress() const override { return 0.0; }
  };

  SimSystem sys;
  const ProcessId completes = sys.spawn(std::make_unique<StubWorkload>(3.0));
  const ProcessId throws = sys.spawn(std::make_unique<ThrowingWorkload>());
  sys.run_epochs(2);
  const std::uint64_t epoch_before = sys.current_epoch();
  EXPECT_THROW(sys.run_epoch(), std::runtime_error);
  EXPECT_EQ(sys.current_epoch(), epoch_before);  // epoch did not complete
  // `completes` ran its 3rd and final epoch before the throw; it must be
  // off the live list even though the epoch aborted.
  EXPECT_EQ(sys.exit_reason(completes), ExitReason::kCompleted);
  for (const ProcessId pid : sys.live_processes()) {
    EXPECT_NE(pid, completes);
  }
  EXPECT_TRUE(sys.is_live(throws));
}

TEST(System, RetiredProcessKeepsObservableState) {
  // The SoA hot core recycles a process's slot when it dies; every
  // pid-addressed observer must keep returning the state it died with.
  SimSystem sys;
  const ProcessId victim = sys.spawn(std::make_unique<StubWorkload>());
  const ProcessId survivor = sys.spawn(std::make_unique<StubWorkload>());
  sys.set_cgroup_caps(victim, 0.4, 0.9, std::nullopt, std::nullopt);
  sys.run_epochs(3);
  const hpc::HpcSample last = sys.last_sample(victim);
  const double progress = sys.last_progress(victim);
  const ResourceShares eff = sys.effective_shares(victim);

  sys.kill(victim);

  EXPECT_EQ(sys.exit_reason(victim), ExitReason::kKilled);
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(victim).cpu, 0.4);
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(victim).mem, 0.9);
  EXPECT_EQ(sys.last_sample(victim).counts, last.counts);
  EXPECT_DOUBLE_EQ(sys.last_progress(victim), progress);
  EXPECT_DOUBLE_EQ(sys.effective_shares(victim).cpu, eff.cpu);
  EXPECT_EQ(sys.epochs_run(victim), 3u);
  EXPECT_EQ(sys.sample_history(victim).size(), 3u);
  EXPECT_EQ(sys.window_summary(victim).count, 3u);
  EXPECT_EQ(sys.window_accumulator(victim).count(), 3u);

  // The survivor's slot moved down; its pid-addressed state is untouched
  // and further epochs only advance the survivor.
  sys.run_epochs(2);
  EXPECT_EQ(sys.epochs_run(victim), 3u);
  EXPECT_EQ(sys.epochs_run(survivor), 5u);
  EXPECT_EQ(sys.sample_history(survivor).size(), 5u);
}

TEST(System, PidSlotRemapSurvivesMixedExitsAndSpawns) {
  // Stable compaction keeps live slots in ascending pid order through an
  // arbitrary mix of kills, completions and respawns.
  SimSystem sys;
  std::vector<ProcessId> pids;
  for (int i = 0; i < 6; ++i) {
    // pids 1 and 4 complete naturally after 2 epochs.
    const double work = (i == 1 || i == 4) ? 2.0 : 1e9;
    pids.push_back(sys.spawn(std::make_unique<StubWorkload>(work)));
  }
  sys.kill(pids[3]);
  sys.run_epochs(4);  // pids 1 and 4 complete after 2 epochs

  std::span<const ProcessId> live = sys.live_processes();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], pids[0]);
  EXPECT_EQ(live[1], pids[2]);
  EXPECT_EQ(live[2], pids[5]);
  EXPECT_EQ(sys.exit_reason(pids[1]), ExitReason::kCompleted);
  EXPECT_EQ(sys.exit_reason(pids[3]), ExitReason::kKilled);
  for (const ProcessId pid : live) {
    EXPECT_TRUE(sys.is_live(pid));
    EXPECT_EQ(sys.epochs_run(pid), 4u);
    EXPECT_EQ(sys.sample_history(pid).size(), 4u);
  }
  EXPECT_EQ(sys.epochs_run(pids[1]), 2u);
  EXPECT_EQ(sys.epochs_run(pids[3]), 0u);

  // A new spawn lands at the end of the compacted slot range.
  const ProcessId fresh = sys.spawn(std::make_unique<StubWorkload>());
  live = sys.live_processes();
  ASSERT_EQ(live.size(), 4u);
  EXPECT_EQ(live[3], fresh);
  sys.run_epoch();
  EXPECT_EQ(sys.epochs_run(fresh), 1u);
  EXPECT_EQ(sys.epochs_run(pids[0]), 5u);
}

TEST(System, FusedEpochApiMatchesRunEpoch) {
  // run_epoch is begin_epoch + step_slot* + end_epoch; driving the phases
  // by hand must be indistinguishable.
  SimSystem by_hand;
  SimSystem by_run_epoch;
  for (int i = 0; i < 3; ++i) {
    by_hand.spawn(std::make_unique<StubWorkload>(i == 1 ? 2.0 : 1e9));
    by_run_epoch.spawn(std::make_unique<StubWorkload>(i == 1 ? 2.0 : 1e9));
  }
  for (int e = 0; e < 4; ++e) {
    by_hand.begin_epoch();
    for (std::size_t s = 0; s < by_hand.live_processes().size(); ++s) {
      by_hand.step_slot(s);
    }
    by_hand.end_epoch();
    by_run_epoch.run_epoch();
  }
  EXPECT_EQ(by_hand.current_epoch(), by_run_epoch.current_epoch());
  for (ProcessId pid = 0; pid < 3; ++pid) {
    EXPECT_EQ(by_hand.exit_reason(pid), by_run_epoch.exit_reason(pid));
    EXPECT_EQ(by_hand.epochs_run(pid), by_run_epoch.epochs_run(pid));
    ASSERT_EQ(by_hand.sample_history(pid).size(),
              by_run_epoch.sample_history(pid).size());
    for (std::size_t e = 0; e < by_hand.sample_history(pid).size(); ++e) {
      EXPECT_EQ(by_hand.sample_history(pid)[e].counts,
                by_run_epoch.sample_history(pid)[e].counts);
    }
  }
}

TEST(System, OpenEpochDefersLifecycleToTheBoundary) {
  SimSystem sys;
  const ProcessId first = sys.spawn(std::make_unique<StubWorkload>());
  sys.begin_epoch();
  EXPECT_THROW(sys.begin_epoch(), std::logic_error);

  // Mid-epoch spawn: pid assigned now, liveness committed at the boundary.
  const ProcessId mid = sys.spawn(std::make_unique<StubWorkload>());
  EXPECT_FALSE(sys.is_live(mid));
  EXPECT_EQ(sys.exit_reason(mid), ExitReason::kRunning);
  EXPECT_EQ(sys.live_processes().size(), 1u);  // slot layout frozen

  // Mid-epoch kill of a live slot: the open epoch still runs it in full.
  sys.kill(first);
  EXPECT_TRUE(sys.is_live(first));
  sys.step_slot(0);

  sys.abort_epoch();  // close without counting: deltas commit anyway
  EXPECT_EQ(sys.current_epoch(), 0u);
  EXPECT_FALSE(sys.is_live(first));
  EXPECT_EQ(sys.exit_reason(first), ExitReason::kKilled);
  EXPECT_EQ(sys.epochs_run(first), 1u);  // the aborted epoch's slot ran
  EXPECT_TRUE(sys.is_live(mid));
  ASSERT_EQ(sys.live_processes().size(), 1u);
  EXPECT_EQ(sys.live_processes()[0], mid);
  sys.run_epoch();
  EXPECT_EQ(sys.current_epoch(), 1u);
  EXPECT_EQ(sys.epochs_run(mid), 1u);
}

TEST(System, MidEpochSpawnFirstRunsInTheNextEpoch) {
  // Eq. 3 next-epoch timing for admissions: a process spawned during epoch
  // E commits at E's boundary and first executes in epoch E+1.
  SimSystem sys;
  sys.spawn(std::make_unique<StubWorkload>());
  sys.begin_epoch();
  const ProcessId mid = sys.spawn(std::make_unique<StubWorkload>());
  sys.step_slot(0);
  sys.end_epoch();
  EXPECT_EQ(sys.epochs_run(mid), 0u);
  EXPECT_TRUE(sys.is_live(mid));
  EXPECT_TRUE(sys.scheduler().has_process(mid));
  sys.run_epoch();
  EXPECT_EQ(sys.epochs_run(mid), 1u);
  EXPECT_EQ(sys.sample_history(mid).size(), 1u);
}

TEST(System, StateConfiguredWhilePendingSurvivesTheAdmission) {
  // Caps and scheduler weights set between a mid-epoch spawn and its
  // boundary commit must apply from the process's first epoch — not be
  // silently reset by the admission.
  SimSystem sys;
  sys.spawn(std::make_unique<StubWorkload>());
  sys.begin_epoch();
  const ProcessId mid = sys.spawn(std::make_unique<StubWorkload>());
  sys.set_cgroup_caps(mid, 0.25, std::nullopt, std::nullopt, std::nullopt);
  sys.apply_sched_threat_delta(mid, 5.0);  // factor 0.5 under default gamma
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(mid).cpu, 0.25);
  sys.step_slot(0);
  sys.end_epoch();
  EXPECT_DOUBLE_EQ(sys.cgroup_caps(mid).cpu, 0.25);
  EXPECT_NEAR(sys.scheduler().weight_factor(mid), 0.5, 1e-12);
  sys.run_epoch();
  // The first executed epoch already ran under both restrictions.
  EXPECT_LE(sys.effective_shares(mid).cpu, 0.25);
}

TEST(System, MidEpochKillOfPendingAdmissionCancelsIt) {
  SimSystem sys;
  sys.spawn(std::make_unique<StubWorkload>());
  sys.begin_epoch();
  const ProcessId mid = sys.spawn(std::make_unique<StubWorkload>());
  sys.kill(mid);  // cancelled before it ever ran
  sys.step_slot(0);
  sys.end_epoch();
  EXPECT_FALSE(sys.is_live(mid));
  EXPECT_EQ(sys.exit_reason(mid), ExitReason::kKilled);
  EXPECT_EQ(sys.epochs_run(mid), 0u);
  EXPECT_EQ(sys.live_processes().size(), 1u);
  EXPECT_FALSE(sys.scheduler().has_process(mid));
}

TEST(System, MidEpochCompletionBeatsDeferredKill) {
  SimSystem sys;
  const ProcessId pid = sys.spawn(std::make_unique<StubWorkload>(1.0));
  sys.begin_epoch();
  sys.kill(pid);
  sys.step_slot(0);  // runs to natural completion this very epoch
  sys.end_epoch();
  EXPECT_EQ(sys.exit_reason(pid), ExitReason::kCompleted)
      << "a natural completion in the same epoch outranks the deferred kill";
}

TEST(System, RetiredProcessesLeaveTheCfsPool) {
  // A dead process must stop competing for CPU: after its retirement the
  // survivors' shares are computed as if it never existed, while its own
  // last weight stays readable post-mortem.
  SimSystem sys;
  const ProcessId a = sys.spawn(std::make_unique<StubWorkload>());
  const ProcessId b = sys.spawn(std::make_unique<StubWorkload>());
  sys.run_epoch();
  sys.apply_sched_threat_delta(b, 5.0);  // demote b, then kill it
  const double demoted = sys.scheduler().weight_factor(b);
  EXPECT_LT(demoted, 1.0);
  sys.kill(b);
  sys.run_epoch();
  EXPECT_FALSE(sys.scheduler().has_process(b));
  EXPECT_DOUBLE_EQ(sys.scheduler().weight_factor(b), demoted)
      << "the parked weight keeps answering with the final factor";
  // Late commands against the dead pid must not resurrect its weight.
  sys.apply_sched_threat_delta(b, 1.0);
  sys.reset_sched_weight(b);
  EXPECT_FALSE(sys.scheduler().has_process(b));
  EXPECT_DOUBLE_EQ(sys.scheduler().weight_factor(b), demoted);
  // With only `a` live (weight 1.0), its normalized share is exactly 1.
  sys.run_epoch();
  EXPECT_DOUBLE_EQ(sys.effective_shares(a).cpu, 1.0);
}

TEST(System, ReserveAndRecyclingKeepChurnBounded) {
  SimSystem sys;
  sys.reserve(64);
  sys.enable_history_recycling();
  std::vector<ProcessId> pids;
  for (int i = 0; i < 4; ++i) {
    pids.push_back(sys.spawn(std::make_unique<StubWorkload>()));
  }
  sys.run_epochs(3);
  sys.kill(pids[1]);
  sys.run_epoch();
  // The recycled pid keeps its scalar snapshot but loses the heavy state.
  EXPECT_EQ(sys.exit_reason(pids[1]), ExitReason::kKilled);
  EXPECT_EQ(sys.epochs_run(pids[1]), 3u);
  EXPECT_TRUE(sys.sample_history(pids[1]).empty());
  EXPECT_THROW((void)sys.workload(pids[1]), std::logic_error);
  EXPECT_DOUBLE_EQ(sys.last_progress(pids[1]), 1.0);
  // A fresh spawn inherits the donated history buffer's capacity.
  const ProcessId fresh = sys.spawn(std::make_unique<StubWorkload>());
  sys.run_epoch();
  EXPECT_EQ(sys.sample_history(fresh).size(), 1u);
  EXPECT_TRUE(sys.is_live(fresh));
}

TEST(Platform, ProfilesDiffer) {
  EXPECT_LT(platforms::i9_11900().hpc_noise, platforms::i7_3770().hpc_noise);
  EXPECT_GT(platforms::i7_7700().hpc_noise, platforms::i7_3770().hpc_noise);
  EXPECT_EQ(platforms::i7_3770().epoch_ms, 100.0);
}

}  // namespace
}  // namespace valkyrie::sim
