#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "hpc/hpc.hpp"
#include "ml/dataset.hpp"
#include "ml/detector.hpp"
#include "ml/gbt.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"
#include "ml/window_accumulator.hpp"
#include "util/rng.hpp"

namespace {

/// Global allocation counter for the zero-allocation hot-path guard.
std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace valkyrie::ml {
namespace {

hpc::HpcSample random_sample(util::Rng& rng) {
  hpc::HpcSample s;
  for (double& c : s.counts) {
    // Log-uniform counts spanning nine orders of magnitude: the worst
    // realistic conditioning for the running-variance recurrences.
    c = std::exp(rng.uniform(0.0, 21.0));
  }
  return s;
}

// The streaming summary must reproduce the batch two-pass aggregate to
// 1e-9 — Welford against textbook mean/stddev — over randomized windows
// spanning 1 to 10k samples.
TEST(WindowAccumulator, MatchesBatchWindowFeatures) {
  util::Rng rng(0xacc);
  for (int round = 0; round < 12; ++round) {
    const std::size_t len = 1 + rng.below(round < 8 ? 1000 : 10000);
    std::vector<hpc::HpcSample> window;
    window.reserve(len);
    WindowAccumulator acc;
    for (std::size_t i = 0; i < len; ++i) {
      window.push_back(random_sample(rng));
      acc.add(window.back());
    }
    const std::vector<double> batch =
        window_features({window.data(), window.size()});
    const auto streamed = acc.summary().features();
    ASSERT_EQ(batch.size(), streamed.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_NEAR(batch[i], streamed[i], 1e-9)
          << "round " << round << " len " << len << " feature " << i;
    }
  }
}

TEST(WindowAccumulator, MatchesBatchAfterReset) {
  util::Rng rng(0xe5e7);
  WindowAccumulator acc;
  // Pollute with one episode, reset, and check the next episode is exact.
  for (int i = 0; i < 500; ++i) acc.add(random_sample(rng));
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);

  std::vector<hpc::HpcSample> window;
  for (int i = 0; i < 777; ++i) {
    window.push_back(random_sample(rng));
    acc.add(window.back());
  }
  const std::vector<double> batch =
      window_features({window.data(), window.size()});
  const auto streamed = acc.summary().features();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(batch[i], streamed[i], 1e-9) << "feature " << i;
  }
}

TEST(WindowAccumulator, EmptySummaryIsZeroCount) {
  const WindowAccumulator acc;
  const WindowSummary summary = acc.summary();
  EXPECT_EQ(summary.count, 0u);
  for (const double v : summary.features()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(WindowAccumulator, NewestFeaturesTrackLastSample) {
  util::Rng rng(0x11);
  WindowAccumulator acc;
  hpc::HpcSample last;
  for (int i = 0; i < 10; ++i) {
    last = random_sample(rng);
    acc.add(last);
  }
  const hpc::FeatureVec expected = hpc::to_features(last);
  const WindowSummary summary = acc.summary();
  for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
    EXPECT_DOUBLE_EQ(summary.newest[i], expected[i]);
  }
}

// The per-epoch streaming path — fold a sample, assemble the summary, run
// a summary-capable detector — must not touch the heap at all.
TEST(WindowAccumulator, StreamingHotPathDoesNotAllocate) {
  util::Rng rng(0xa110c);
  std::vector<hpc::HpcSample> samples;
  for (int i = 0; i < 64; ++i) samples.push_back(random_sample(rng));
  WindowAccumulator acc;
  acc.add(samples[0]);  // warm up

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  double checksum = 0.0;
  for (int i = 1; i < 64; ++i) {
    acc.add(samples[static_cast<std::size_t>(i)]);
    const WindowSummary summary = acc.summary();
    checksum += summary.features()[0] + summary.newest[1];
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "streaming feature path allocated";
  EXPECT_TRUE(std::isfinite(checksum));
}

// --- Streaming inference equivalence -----------------------------------------
//
// The StreamingInference running-vote path must agree epoch for epoch with
// the legacy recompute-the-whole-window path, for every detector family
// that exposes vote structure and for the summary-capable MLP.

hpc::HpcSample draw(util::Rng& rng, bool malicious) {
  hpc::HpcSample s;
  s[hpc::Event::kInstructions] =
      std::max(0.0, rng.normal(malicious ? 4e7 : 3e8, 2e7));
  s[hpc::Event::kCycles] = std::max(0.0, rng.normal(3.5e8, 1e7));
  s[hpc::Event::kLlcMisses] =
      std::max(0.0, rng.normal(malicious ? 4e7 : 4e5, malicious ? 4e6 : 8e4));
  s[hpc::Event::kMemBandwidth] =
      std::max(0.0, rng.normal(malicious ? 2e9 : 5e7, malicious ? 2e8 : 1e7));
  return s;
}

TraceSet make_corpus(int per_class, int trace_len, std::uint64_t seed) {
  util::Rng rng(seed);
  TraceSet set;
  for (int label = 0; label < 2; ++label) {
    for (int t = 0; t < per_class; ++t) {
      LabeledTrace trace;
      trace.malicious = label == 1;
      for (int i = 0; i < trace_len; ++i) {
        trace.samples.push_back(draw(rng, trace.malicious));
      }
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

void expect_streaming_matches_batch(const Detector& detector,
                                    double noise_blend) {
  // A drifting window (benign samples with an increasing chance of attack
  // samples) exercises votes flipping in both directions.
  util::Rng rng(0x77);
  WindowAccumulator acc;
  StreamingInference stream;
  std::vector<hpc::HpcSample> window;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const bool attack_epoch =
        rng.chance(noise_blend * static_cast<double>(epoch) / 400.0);
    window.push_back(draw(rng, attack_epoch));
    acc.add(window.back());
    const WindowSummary summary =
        acc.summary({window.data(), window.size()});
    const Inference batch = detector.infer({window.data(), window.size()});
    const Inference streamed = stream.infer(detector, summary);
    ASSERT_EQ(batch, streamed) << detector.name() << " epoch " << epoch;
  }
}

TEST(StreamingInference, SvmMatchesWholeWindowVote) {
  const SvmDetector det = SvmDetector::make(make_corpus(10, 20, 1), 2);
  expect_streaming_matches_batch(det, 0.9);
}

TEST(StreamingInference, GbtMatchesWholeWindowVote) {
  const GbtDetector det = GbtDetector::make(make_corpus(10, 20, 3));
  expect_streaming_matches_batch(det, 0.9);
}

TEST(StreamingInference, CatchesUpWhenAttachedMidRun) {
  const SvmDetector det = SvmDetector::make(make_corpus(10, 20, 4), 5);
  util::Rng rng(0x99);
  WindowAccumulator acc;
  std::vector<hpc::HpcSample> window;
  for (int i = 0; i < 150; ++i) {
    window.push_back(draw(rng, i % 3 == 0));
    acc.add(window.back());
  }
  // Fresh streaming state pointed at a 150-deep window: must fold all
  // uncounted measurements, not just the newest.
  StreamingInference stream;
  const WindowSummary summary = acc.summary({window.data(), window.size()});
  EXPECT_EQ(stream.infer(det, summary),
            det.infer({window.data(), window.size()}));
}

TEST(StreamingInference, MlpSummaryInferenceDoesNotAllocate) {
  const MlpDetector det =
      MlpDetector::make_small_ann(make_corpus(8, 20, 9), 10);
  util::Rng rng(0xdead);
  WindowAccumulator acc;
  acc.add(draw(rng, false));
  (void)det.infer(acc.summary());  // warm up

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  int malicious = 0;
  for (int epoch = 0; epoch < 64; ++epoch) {
    acc.add(draw(rng, false));
    malicious += det.infer(acc.summary()) == Inference::kMalicious;
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "summary inference allocated";
  EXPECT_LE(malicious, 64);
}

TEST(StreamingInference, MlpSummaryMatchesBatchWindow) {
  const MlpDetector det =
      MlpDetector::make_small_ann(make_corpus(10, 25, 6), 7);
  // Streaming summary inference and batch whole-window inference follow
  // the same aggregate features, so decisions agree along a whole run.
  util::Rng rng(0xab);
  WindowAccumulator acc;
  std::vector<hpc::HpcSample> window;
  int agree = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    window.push_back(draw(rng, epoch > 120));
    acc.add(window.back());
    const Inference batch = det.infer({window.data(), window.size()});
    const Inference streamed =
        det.infer(acc.summary());  // never touches the raw window
    agree += batch == streamed;
  }
  EXPECT_EQ(agree, 200);
}

}  // namespace
}  // namespace valkyrie::ml
