// Streaming per-process feature statistics — the O(1)-per-epoch replacement
// for recomputing window_features() over the full accumulated measurement
// window every epoch.
//
// Valkyrie's premise is that detection efficacy grows with the accumulated
// window (paper Fig. 1 / §IV-A), so a T-epoch run that re-derives aggregate
// features from scratch each epoch pays O(T^2) total feature work per
// process. A WindowAccumulator instead folds each new HpcSample into
// Welford running mean/variance of the log1p features as it is captured:
// O(kFeatureDim) per epoch, allocation-free, and numerically at least as
// good as the two-pass batch computation.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <span>
#include <type_traits>

#include "hpc/hpc.hpp"

namespace valkyrie::ml {

/// Aggregate feature dimensionality for whole-window models: per-event mean
/// followed by per-event standard deviation of the log1p features.
inline constexpr std::size_t kWindowFeatureDim = 2 * hpc::kFeatureDim;

/// One epoch's view of a process's accumulated measurement window: the
/// streaming statistics plus (for detectors that still need it) the raw
/// window itself. Assembled once per process per epoch and shared by every
/// detector that inspects the process.
struct WindowSummary {
  /// Number of measurements accumulated.
  std::size_t count = 0;
  /// Per-feature running mean of hpc::to_features over the window.
  hpc::FeatureVec mean{};
  /// Per-feature population standard deviation over the window.
  hpc::FeatureVec stddev{};
  /// Features of the newest measurement (the one added this epoch).
  hpc::FeatureVec newest{};
  /// The raw accumulated window, oldest first. May be empty for callers
  /// that only stream; the default Detector adapter needs it.
  std::span<const hpc::HpcSample> window{};

  /// The whole-window aggregate feature vector [mean..., stddev...] —
  /// identical (to floating-point noise) to batch window_features().
  [[nodiscard]] std::array<double, kWindowFeatureDim> features()
      const noexcept {
    std::array<double, kWindowFeatureDim> out;
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      out[i] = mean[i];
      out[hpc::kFeatureDim + i] = stddev[i];
    }
    return out;
  }
};

/// Welford running mean/variance over the log1p features of a growing
/// measurement window. add() is O(kFeatureDim) with zero heap allocations;
/// the summary is always consistent with the samples added since the last
/// reset().
///
/// The accumulator lives in SimSystem's slot-indexed hot-state arrays and
/// is relocated by plain assignment when slots compact, so it must stay
/// trivially copyable (static_asserted below) — no owning members.
class WindowAccumulator {
 public:
  /// Folds one epoch's sample into the running statistics.
  void add(const hpc::HpcSample& sample) noexcept {
    hpc::to_features(sample, newest_);
    add_features(newest_);
  }

  /// Folds an already-computed feature vector (callers that have one).
  void add_features(std::span<const double> features) noexcept {
    ++count_;
    const double inv_n = 1.0 / static_cast<double>(count_);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      const double delta = features[i] - mean_[i];
      mean_[i] += delta * inv_n;
      m2_[i] += delta * (features[i] - mean_[i]);
    }
  }

  /// Forgets everything (episode reset / process restart).
  void reset() noexcept {
    count_ = 0;
    mean_.fill(0.0);
    m2_.fill(0.0);
    newest_.fill(0.0);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Features of the most recently added sample.
  [[nodiscard]] const hpc::FeatureVec& newest_features() const noexcept {
    return newest_;
  }

  /// Writes the newest-measurement features into one column of a
  /// feature-major plane: feature f lands `f * stride` doubles past the
  /// base pointer.
  void store_newest_column(double* newest_col,
                           std::size_t stride) const noexcept {
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      newest_col[i * stride] = newest_[i];
    }
  }

  /// Writes the running mean/stddev into two plane columns. The stddev
  /// uses exactly summary()'s formula, so the columns carry the same bits
  /// a freshly assembled WindowSummary would. Pre: count() > 0.
  void store_stats_columns(double* mean_col, double* stddev_col,
                           std::size_t stride) const noexcept {
    const double inv_n = 1.0 / static_cast<double>(count_);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      mean_col[i * stride] = mean_[i];
      const double var = m2_[i] * inv_n;
      stddev_col[i * stride] = var > 0.0 ? std::sqrt(var) : 0.0;
    }
  }

  /// All three column groups at once (full-plane drivers and tests).
  void store_plane_column(double* newest_col, double* mean_col,
                          double* stddev_col,
                          std::size_t stride) const noexcept {
    store_newest_column(newest_col, stride);
    store_stats_columns(mean_col, stddev_col, stride);
  }

  /// Raw Welford state, for snapshot/restore. Restoring and continuing to
  /// add() produces bit-identical statistics to the uninterrupted stream.
  struct State {
    std::size_t count = 0;
    hpc::FeatureVec mean{};
    hpc::FeatureVec m2{};
    hpc::FeatureVec newest{};
  };

  [[nodiscard]] State state() const noexcept {
    return {count_, mean_, m2_, newest_};
  }

  void restore(const State& s) noexcept {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
    newest_ = s.newest;
  }

  /// Assembles the streaming summary; `window` is attached verbatim for
  /// detectors that fall back to the raw measurements.
  [[nodiscard]] WindowSummary summary(
      std::span<const hpc::HpcSample> window = {}) const noexcept {
    WindowSummary out;
    out.count = count_;
    out.newest = newest_;
    out.window = window;
    if (count_ == 0) return out;
    const double inv_n = 1.0 / static_cast<double>(count_);
    for (std::size_t i = 0; i < hpc::kFeatureDim; ++i) {
      out.mean[i] = mean_[i];
      const double var = m2_[i] * inv_n;
      out.stddev[i] = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    return out;
  }

 private:
  std::size_t count_ = 0;
  hpc::FeatureVec mean_{};
  hpc::FeatureVec m2_{};
  hpc::FeatureVec newest_{};
};

static_assert(std::is_trivially_copyable_v<WindowAccumulator>,
              "WindowAccumulator is relocated byte-wise by SimSystem's "
              "hot-slot compaction");

}  // namespace valkyrie::ml
