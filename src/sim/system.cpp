#include "sim/system.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "fault/fault_plane.hpp"
#include "ml/plane_fold.hpp"
#include "snapshot/image.hpp"
#include "snapshot/registry.hpp"
#include "util/serial.hpp"
#include "util/thread_pool.hpp"

namespace valkyrie::sim {

// The compaction pass moves hot state between slots by plain assignment;
// these stay trivially copyable so the shift is a handful of memcpys and
// retirement snapshots cannot throw mid-compaction.
static_assert(std::is_trivially_copyable_v<util::Rng>);
static_assert(std::is_trivially_copyable_v<ResourceShares>);
static_assert(std::is_trivially_copyable_v<hpc::HpcSample>);
static_assert(std::is_trivially_copyable_v<ml::WindowAccumulator>);

SimSystem::SimSystem(const PlatformProfile& platform, std::uint64_t seed)
    : platform_(platform), rng_(seed), scheduler_(platform.scheduler) {}

ProcessId SimSystem::spawn(std::unique_ptr<Workload> workload) {
  if (workload == nullptr) {
    throw std::invalid_argument("SimSystem::spawn: null workload");
  }
  const auto pid = static_cast<ProcessId>(next_pid_++);

  const std::uint32_t row = alloc_row();
  ColdProc& cold = cold_[row];
  cold.workload = std::move(workload);
  if (!history_pool_.empty()) {
    // Retirement pool: inherit a retired process's history buffer,
    // capacity and all, so steady-state churn appends without allocating.
    cold.history = std::move(history_pool_.back());
    history_pool_.pop_back();
  }

  // The scheduler weight registers at spawn either way: totals are
  // live-list sums, so a pending pid's factor competes for nothing until
  // its admission commits — but weight state configured while pending
  // (apply_sched_threat_delta) survives the boundary like cgroup caps do.
  scheduler_.add_process(pid);
  if (epoch_open_) {
    // The hot arrays are frozen under the running dispatch: queue the
    // admission; it commits at the epoch boundary, in spawn order.
    pid_map_.insert(pid, {kPendingSlot, row});
    pending_admit_.push_back(pid);
    return pid;
  }
  pid_map_.insert(pid, {kNoSlot, row});  // admit_slot writes the real slot
  admit_slot(pid);
  return pid;
}

std::uint32_t SimSystem::alloc_row() {
  if (!free_rows_.empty()) {
    const std::uint32_t row = free_rows_.back();
    free_rows_.pop_back();
    return row;
  }
  cold_.emplace_back();
  return static_cast<std::uint32_t>(cold_.size() - 1);
}

void SimSystem::admit_slot(ProcessId pid) {
  // New pids are maximal, so appending keeps the slot order ascending in
  // pid — the invariant the stable compaction preserves.
  const auto slot = static_cast<std::uint32_t>(slot_pid_.size());
  PidRec& rec = pid_map_.at(pid);
  rec.slot = slot;
  slot_pid_.push_back(pid);
  row_s_.push_back(rec.row);
  rng_s_.push_back(rng_.fork());
  // Seeded from the retired snapshot, not default-constructed: caps set
  // while the admission was pending were routed there, and must apply
  // from the process's first epoch. A fresh pid's snapshot is all
  // defaults, so the common path is unchanged.
  cgroup_s_.push_back(cold_[rec.row].retired.cgroup);
  effective_s_.emplace_back();
  last_sample_s_.emplace_back();
  accum_s_.emplace_back();
  last_progress_s_.push_back(0.0);
  epochs_run_s_.push_back(0);
  exit_s_.push_back(ExitReason::kRunning);
  invalid_streak_s_.push_back(0);
  feature_streak_s_.push_back({});

  if (plane_enabled_) {
    plane_count_.push_back(0);
    plane_window_.push_back({});
    plane_window_wrap_.push_back({});
    if (fold_enabled_) {
      fold_mask_.push_back(0);
      fold_pending_.push_back(0);
    }
    reserve_plane();
    if (fold_enabled_) {
      // The column may carry a retired process's Welford rows (capacity is
      // never released); in fold mode the plane is authoritative window
      // state, so a fresh admission must start from zeroed statistics.
      double* col = plane_.data() + slot;
      for (std::size_t r = 0; r < plane_rows_used(); ++r) {
        col[r * plane_stride_] = 0.0;
      }
    }
  }
}

void SimSystem::reserve(std::size_t max_processes) {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::reserve: epoch in progress");
  }
  cold_.reserve(max_processes);
  free_rows_.reserve(max_processes);
  pid_map_.reserve(max_processes);
  // The retire queue's lazy prefix compaction lets up to kRetireCompactMin
  // drained entries sit ahead of the pending ones before the erase fires,
  // so the vector's length peaks at pending + max(kRetireCompactMin,
  // pending) — reserve that, or the first compaction cycle of a
  // steady-state churn run would reallocate once.
  retire_queue_.reserve(2 * max_processes + kRetireCompactMin);
  slot_pid_.reserve(max_processes);
  row_s_.reserve(max_processes);
  factor_s_.reserve(max_processes);
  rng_s_.reserve(max_processes);
  cgroup_s_.reserve(max_processes);
  effective_s_.reserve(max_processes);
  last_sample_s_.reserve(max_processes);
  accum_s_.reserve(max_processes);
  last_progress_s_.reserve(max_processes);
  epochs_run_s_.reserve(max_processes);
  exit_s_.reserve(max_processes);
  invalid_streak_s_.reserve(max_processes);
  feature_streak_s_.reserve(max_processes);
  pending_admit_.reserve(max_processes);
  pending_kill_.reserve(max_processes);
  lifecycle_scratch_.reserve(max_processes);
  history_pool_.reserve(max_processes);
  scheduler_.reserve(max_processes);
  if (max_processes > reserved_capacity_) {
    reserved_capacity_ = max_processes;
    if (plane_enabled_) {
      plane_count_.reserve(max_processes);
      plane_window_.reserve(max_processes);
      plane_window_wrap_.reserve(max_processes);
      if (fold_enabled_) {
        fold_mask_.reserve(max_processes);
        fold_pending_.reserve(max_processes);
      }
      reserve_plane();
    }
  }
}

void SimSystem::enable_feature_plane(ml::Detector::PlaneSections sections) {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::enable_feature_plane: epoch open");
  }
  // Re-enabling widens the maintained section set (two drivers with
  // different needs compose); it never narrows under an existing driver.
  plane_newest_ |= sections != ml::Detector::PlaneSections::kStatsOnly;
  plane_stats_ |= sections != ml::Detector::PlaneSections::kNewestOnly;
  plane_windows_ |= sections == ml::Detector::PlaneSections::kFull;
  if (plane_enabled_) return;
  plane_enabled_ = true;
  plane_count_.reserve(reserved_capacity_);
  plane_window_.reserve(reserved_capacity_);
  plane_window_wrap_.reserve(reserved_capacity_);
  plane_count_.assign(slot_pid_.size(), 0);
  plane_window_.assign(slot_pid_.size(), {});
  plane_window_wrap_.assign(slot_pid_.size(), {});
  reserve_plane();
}

void SimSystem::enable_plane_major_fold() {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::enable_plane_major_fold: epoch open");
  }
  if (fold_enabled_) return;
  // The fold both stages into the newest rows and maintains the stats
  // rows, so the plane must carry them regardless of what any driver's
  // detector declared; widening-only, like enable_feature_plane.
  enable_feature_plane(ml::Detector::PlaneSections::kNewestOnly);
  enable_feature_plane(ml::Detector::PlaneSections::kStatsOnly);
  fold_enabled_ = true;
  fold_mask_.reserve(reserved_capacity_);
  fold_pending_.reserve(reserved_capacity_);
  fold_mask_.assign(slot_pid_.size(), 0);
  fold_pending_.assign(slot_pid_.size(), 0);
  // Grow the plane to carry the m2/fold-count row groups, then hand the
  // authoritative Welford state over from the slot accumulators.
  reserve_plane();
  plane_.resize(plane_rows_used() * plane_stride_, 0.0);
  scatter_accums_to_plane();
}

void SimSystem::reserve_plane() {
  if (!plane_enabled_) return;
  // Pad the stride to a full cache line of doubles so feature rows keep a
  // fixed 64-byte-aligned distance and a grown plane is only reallocated
  // when the capacity line is actually crossed. reserve() floors the
  // stride at the reserved capacity, so churn admissions after a reserve
  // never regrow the plane.
  constexpr std::size_t kPad = 8;
  const std::size_t want = std::max(slot_pid_.size(), reserved_capacity_);
  const std::size_t stride = (want + kPad - 1) / kPad * kPad;
  if (stride <= plane_stride_) return;
  const std::size_t rows = plane_rows_used();
  if (fold_enabled_ && plane_stride_ != 0) {
    // Fold mode: the plane IS the window state — migrate every existing
    // column into the wider buffer instead of wiping.
    std::vector<double> grown(rows * stride, 0.0);
    const std::size_t cols = std::min(plane_stride_, slot_pid_.size());
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy_n(plane_.data() + r * plane_stride_, cols,
                  grown.data() + r * stride);
    }
    plane_ = std::move(grown);
  } else {
    // Old columns need no migration: every live column is rewritten by the
    // next epoch's per-slot phase before any batch kernel reads it.
    plane_.assign(rows * stride, 0.0);
  }
  plane_stride_ = stride;
}

ml::SummaryMatrixView SimSystem::feature_plane() const noexcept {
  ml::SummaryMatrixView view;
  view.newest = plane_.data();
  view.mean = plane_.data() + hpc::kFeatureDim * plane_stride_;
  view.stddev = plane_.data() + 2 * hpc::kFeatureDim * plane_stride_;
  view.counts = plane_count_.data();
  // Absent spans read as empty windows; a detector that declared a
  // narrower section set promised not to need them.
  view.windows = plane_windows_ ? plane_window_.data() : nullptr;
  view.windows_wrap = plane_windows_ ? plane_window_wrap_.data() : nullptr;
  view.count = slot_pid_.size();
  view.stride = plane_stride_;
  return view;
}

void SimSystem::fold_plane_range(std::size_t begin, std::size_t end) {
  if (!fold_enabled_) return;
  end = std::min(end, fold_pending_.size());
  // Narrow to the staged sub-range so an idempotent safety-net call over
  // an already-folded epoch touches nothing.
  while (begin < end && fold_pending_[begin] == 0) ++begin;
  while (end > begin && fold_pending_[end - 1] == 0) --end;
  if (begin == end) return;
  ml::PlaneFoldRows rows;
  double* base = plane_.data();
  rows.newest = base;
  rows.mean = base + hpc::kFeatureDim * plane_stride_;
  rows.stddev = base + 2 * hpc::kFeatureDim * plane_stride_;
  rows.m2 = base + kPlaneRows * plane_stride_;
  rows.fcount = base + (kPlaneRows + hpc::kFeatureDim) * plane_stride_;
  rows.stride = plane_stride_;
  ml::fold_plane_columns(rows, fold_pending_.data(), fold_mask_.data(), begin,
                         end);
  for (std::size_t s = begin; s < end; ++s) {
    if (fold_pending_[s] != 0) {
      ++plane_count_[s];
      fold_pending_[s] = 0;
    }
  }
}

ml::WindowAccumulator::State SimSystem::fold_state(std::size_t slot) const {
  ml::WindowAccumulator::State st;
  st.count = plane_count_[slot];
  st.newest_mask = fold_mask_[slot];
  const double* col = plane_.data() + slot;
  for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
    st.newest[f] = col[f * plane_stride_];
    st.mean[f] = col[(hpc::kFeatureDim + f) * plane_stride_];
    st.m2[f] = col[(kPlaneRows + f) * plane_stride_];
    // Fold counts are whole numbers carried as doubles (exact <= 2^53).
    st.fcount[f] = static_cast<std::size_t>(
        col[(kPlaneRows + hpc::kFeatureDim + f) * plane_stride_]);
  }
  return st;
}

void SimSystem::scatter_accums_to_plane() {
  const std::size_t stride = plane_stride_;
  for (std::size_t s = 0; s < slot_pid_.size(); ++s) {
    const ml::WindowAccumulator& acc = accum_s_[s];
    const ml::WindowAccumulator::State st = acc.state();
    double* col = plane_.data() + s;
    acc.store_newest_column(col, stride);
    acc.store_stats_columns(col + hpc::kFeatureDim * stride,
                            col + 2 * hpc::kFeatureDim * stride, stride);
    for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
      col[(kPlaneRows + f) * stride] = st.m2[f];
      col[(kPlaneRows + hpc::kFeatureDim + f) * stride] =
          static_cast<double>(st.fcount[f]);
    }
    plane_count_[s] = st.count;
    fold_mask_[s] = st.newest_mask;
    fold_pending_[s] = 0;
  }
}

void SimSystem::enable_counter_rng() {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::enable_counter_rng: epoch open");
  }
  if (counter_rng_) return;
  counter_rng_ = true;
  // Each stream's counter seed derives from one draw of its current state,
  // so the switch is deterministic and fork() from the converted master
  // hands counter-mode children to every later admission.
  rng_ = util::Rng::counter_stream(rng_());
  for (util::Rng& r : rng_s_) r = util::Rng::counter_stream(r());
}

void SimSystem::enable_bounded_history(std::size_t capacity) {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::enable_bounded_history: epoch open");
  }
  if (capacity == 0) {
    throw std::invalid_argument(
        "SimSystem::enable_bounded_history: zero capacity");
  }
  for (const ColdProc& cold : cold_) {
    if (cold.history.size() > capacity) {
      throw std::logic_error(
          "SimSystem::enable_bounded_history: an existing history already "
          "exceeds the capacity");
    }
  }
  // Every history is a straight oldest-first buffer here (heads are 0), so
  // an exactly-full one starts overwriting at index 0 — its oldest sample.
  history_cap_ = capacity;
}

void SimSystem::history_spans(const ColdProc& cold,
                              std::span<const hpc::HpcSample>& older,
                              std::span<const hpc::HpcSample>& wrap) const {
  if (history_cap_ != 0 && cold.history.size() == history_cap_ &&
      cold.head != 0) {
    older = {cold.history.data() + cold.head, history_cap_ - cold.head};
    wrap = {cold.history.data(), cold.head};
  } else {
    older = {cold.history.data(), cold.history.size()};
    wrap = {};
  }
}

SimSystem::HistoryView SimSystem::history_view(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  HistoryView view;
  history_spans(cold_[rec.row], view.older, view.newer);
  return view;
}

SimSystem::PidRec SimSystem::rec_checked(ProcessId pid) const {
  const PidRec* rec = pid_map_.find(pid);
  if (rec == nullptr) {
    throw std::out_of_range("SimSystem: unknown process id");
  }
  return *rec;
}

void SimSystem::begin_epoch() {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::begin_epoch: epoch already open");
  }
  // Slots killed since the last epoch retire now, in one pass — a
  // step_slot on a stale slot would re-execute a dead process.
  if (retire_pending_) retire_dead_slots();
  // Serial global phase: ONE batched prefetching gather of the live list's
  // raw factors into the slot-indexed cache, then a slot-order sum. Every
  // per-slot share below is then a pure function of factor_s_[slot] — the
  // epoch loop never probes the hash table. The sum visits the same
  // factors in the same (ascending-pid) order as the dense era's live-list
  // pass, so the total is bit-identical.
  const std::size_t live = slot_pid_.size();
  factor_s_.resize(live);
  scheduler_.gather_factors(slot_pid_, factor_s_);
  double total = scheduler_.config().background_weight_units;
  for (const double factor : factor_s_) total += std::max(factor, 0.0);
  epoch_total_weight_ = total;
  epoch_any_exited_.store(false, std::memory_order_relaxed);
  epoch_open_ = true;
}

bool SimSystem::step_slot(std::size_t slot) {
  if (!epoch_open_ || slot >= slot_pid_.size()) {
    throw std::logic_error("SimSystem::step_slot: no open epoch / bad slot");
  }
  // Effective CPU share: the scheduler's (possibly demoted) share capped
  // by any cgroup CPU quota. Other resources come from cgroup caps alone.
  // The share comes from the factor cache begin_epoch gathered — same bits
  // as normalized_share(pid, total), no hash probe on the hot path.
  const ResourceShares& cg = cgroup_s_[slot];
  ResourceShares eff;
  eff.cpu = std::min(
      CfsScheduler::share_from_factor(factor_s_[slot], epoch_total_weight_),
      cg.cpu);
  eff.mem = cg.mem;
  eff.net = cg.net;
  eff.fs = cg.fs;
  effective_s_[slot] = eff;

  // Counter-mode streams rebase to (stream seed, epoch, draw 0) here, so a
  // slot's epoch draws are a pure function of its seed and the epoch —
  // independent of every other slot and of any draws a previous epoch made.
  if (counter_rng_) rng_s_[slot].set_epoch(epoch_);

  EpochContext ctx;
  ctx.epoch = epoch_;
  ctx.epoch_ms = platform_.epoch_ms;
  ctx.hpc_noise = platform_.hpc_noise;
  ctx.rng = &rng_s_[slot];

  ColdProc& cold = cold_[row_s_[slot]];
  StepResult step = cold.workload->run_epoch(eff, ctx);
  // Sensor fault plane (armed only): inject this (epoch, pid)'s scheduled
  // fault into the captured sample, then validate it. A quarantined sample
  // commits NOTHING to the window state — no last_sample update, no
  // history append, no accumulator fold — so garbage never reaches a
  // detector or a snapshot; the slot coasts on its last-known statistics
  // and the streak below tells the engine how stale they are. Execution
  // state (progress, epochs_run, the per-slot RNG) advances regardless:
  // the process ran, only its telemetry was lost.
  std::uint32_t stale_mask = 0;
  const bool quarantined =
      sensor_faults_ != nullptr &&
      inject_and_validate(slot, step.hpc, stale_mask);
  if (quarantined) {
    ++invalid_streak_s_[slot];
    for (std::uint32_t& fs : feature_streak_s_[slot]) ++fs;
  } else {
    invalid_streak_s_[slot] = 0;
    last_sample_s_[slot] = step.hpc;
    if (history_cap_ != 0 && cold.history.size() == history_cap_) {
      // Bounded ring: overwrite the oldest retained sample in place.
      cold.history[cold.head] = step.hpc;
      cold.head = cold.head + 1 == history_cap_ ? 0 : cold.head + 1;
    } else {
      cold.history.push_back(step.hpc);
    }
    if (fold_enabled_) {
      // Plane-major fold: STAGE the sample's features into the slot's
      // newest-row column and flag it; the cross-slot kernel folds every
      // staged column after the range's step loop (fold_plane_range).
      hpc::to_features(step.hpc, plane_.data() + slot, plane_stride_);
      fold_mask_[slot] = stale_mask;
      fold_pending_[slot] = 1;
    } else if (stale_mask != 0) {
      // Partial quarantine: the sample was repaired in place (bad columns
      // held at their last committed values) — commit it, but exclude the
      // repaired columns from the window statistics.
      accum_s_[slot].add_masked(step.hpc, stale_mask);
    } else {
      accum_s_[slot].add(step.hpc);
    }
    if (stale_mask != 0) {
      std::array<std::uint32_t, hpc::kFeatureDim>& fs = feature_streak_s_[slot];
      for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
        if (stale_mask & (1u << f)) {
          ++fs[f];
        } else {
          fs[f] = 0;
        }
      }
    } else if (sensor_faults_ != nullptr) {
      feature_streak_s_[slot].fill(0);
    }
  }
  last_progress_s_[slot] = step.progress;
  ++epochs_run_s_[slot];
  if (plane_enabled_) {
    if (!fold_enabled_) {
      // The slot's plane column — the same bits window_summary() would
      // assemble, written while the accumulator state is register/L1-hot,
      // and only the sections the batch driver's detector actually reads
      // (a vote detector skips the mean/stddev stores and their stddev
      // square roots entirely). Distinct slots write distinct columns, so
      // the plane fill shards with the rest of the per-slot phase.
      double* col = plane_.data() + slot;
      const ml::WindowAccumulator& acc = accum_s_[slot];
      if (plane_newest_) acc.store_newest_column(col, plane_stride_);
      if (plane_stats_) {
        acc.store_stats_columns(col + hpc::kFeatureDim * plane_stride_,
                                col + 2 * hpc::kFeatureDim * plane_stride_,
                                plane_stride_);
      }
      plane_count_[slot] = acc.count();
    }
    // Fold mode leaves the count to fold_plane_range (a quarantined epoch
    // stages nothing, so the count correctly stands still).
    if (plane_windows_) {
      history_spans(cold, plane_window_[slot], plane_window_wrap_[slot]);
    }
  }
  if (step.finished) {
    exit_s_[slot] = ExitReason::kCompleted;
    epoch_any_exited_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool SimSystem::inject_and_validate(std::size_t slot, hpc::HpcSample& sample,
                                    std::uint32_t& stale_mask) {
  stale_mask = 0;
  const auto pid = static_cast<std::uint32_t>(slot_pid_[slot]);
  const fault::FaultPlane& plane = *sensor_faults_;
  const fault::SensorFaultKind kind = plane.sensor_fault(epoch_, pid);

  if (!plane.sensor.per_feature()) {
    // Whole-sample path (feature_fraction == 1), byte-identical to the
    // pre-partial pipeline.
    switch (kind) {
      case fault::SensorFaultKind::kNone:
        break;
      case fault::SensorFaultKind::kDropout:
        return true;  // the sample never arrived
      case fault::SensorFaultKind::kStuck:
        // A counter stuck before the first sample ever landed has nothing
        // to repeat — it reads as a dropout.
        if (epochs_run_s_[slot] == 0) return true;
        sample = last_sample_s_[slot];
        break;
      case fault::SensorFaultKind::kNaN:
        sample.counts.fill(std::numeric_limits<double>::quiet_NaN());
        break;
      case fault::SensorFaultKind::kSaturated:
        sample.counts.fill(fault::kSaturationValue);
        break;
    }
    // Validation (the honest half of the pipeline): non-finite or
    // saturated values are transport garbage, and a bit-exact repeat of
    // the previous sample is a stuck counter bank — continuous measurement
    // noise makes a genuine repeat vanishingly unlikely, and this check
    // only runs while a fault plane is armed.
    for (const double c : sample.counts) {
      if (!std::isfinite(c) || c >= fault::kSaturationThreshold) return true;
    }
    return epochs_run_s_[slot] > 0 &&
           std::memcmp(&sample, &last_sample_s_[slot], sizeof(sample)) == 0;
  }

  // Per-feature path: the fault hits the columns sensor_feature_mask
  // selects, validation re-derives the bad set per column (it never trusts
  // the injector), and a partially-bad sample is repaired instead of
  // dropped. A dropout is still the whole sample — the transport lost it,
  // there are no columns to save.
  if (kind == fault::SensorFaultKind::kDropout) return true;
  const bool first = epochs_run_s_[slot] == 0;
  const hpc::HpcSample& held = last_sample_s_[slot];
  if (kind != fault::SensorFaultKind::kNone) {
    // A first-epoch fault has no committed value to hold or repair from:
    // the whole sample quarantines, exactly like the whole-sample path's
    // stuck-before-first rule.
    if (first) return true;
    const std::uint32_t inject = plane.sensor_feature_mask(epoch_, pid);
    for (std::size_t f = 0; f < hpc::kNumEvents; ++f) {
      if (!(inject & (1u << f))) continue;
      switch (kind) {
        case fault::SensorFaultKind::kStuck:
          sample.counts[f] = held.counts[f];
          break;
        case fault::SensorFaultKind::kNaN:
          sample.counts[f] = std::numeric_limits<double>::quiet_NaN();
          break;
        case fault::SensorFaultKind::kSaturated:
          sample.counts[f] = fault::kSaturationValue;
          break;
        case fault::SensorFaultKind::kNone:
        case fault::SensorFaultKind::kDropout:
          break;  // unreachable
      }
    }
  }
  // Per-column validation: non-finite / saturated transport garbage, plus
  // a bit-exact repeat of the column's last committed value (a stuck
  // counter; continuous measurement noise makes a genuine single-column
  // repeat vanishingly unlikely).
  std::uint32_t bad = 0;
  for (std::size_t f = 0; f < hpc::kNumEvents; ++f) {
    const double c = sample.counts[f];
    if (!std::isfinite(c) || c >= fault::kSaturationThreshold) {
      bad |= 1u << f;
      continue;
    }
    if (!first &&
        std::memcmp(&sample.counts[f], &held.counts[f], sizeof(double)) == 0) {
      bad |= 1u << f;
    }
  }
  if (bad == 0) return false;
  constexpr std::uint32_t kAll = (1u << hpc::kNumEvents) - 1;
  if (first || bad == kAll) return true;  // nothing healthy left to commit
  // Cycles is the shared denominator of every rate feature to_features
  // derives: holding it at a stale value would skew ALL columns while
  // stale_mask flagged only the cycles bit (itself a no-op — the cycles
  // feature is pinned to 0). No column is repairable through a lying
  // denominator, so the whole sample quarantines.
  constexpr std::uint32_t kCyclesBit =
      1u << static_cast<std::uint32_t>(hpc::Event::kCycles);
  if (bad & kCyclesBit) return true;
  // Repair: hold each bad column at its last committed value so the sample
  // entering history/last_sample carries no garbage; the caller's masked
  // fold keeps the repaired columns out of the statistics.
  for (std::size_t f = 0; f < hpc::kNumEvents; ++f) {
    if (bad & (1u << f)) sample.counts[f] = held.counts[f];
  }
  stale_mask = bad;
  return false;
}

void SimSystem::arm_sensor_faults(const fault::FaultPlane* plane) {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::arm_sensor_faults: epoch open");
  }
  // Fail loudly at arm time: a degenerate rate (NaN, negative, > 1) would
  // otherwise just skew a hash threshold into never/always firing.
  if (plane != nullptr) plane->validate();
  sensor_faults_ = plane;
}

std::uint64_t SimSystem::invalid_streak(ProcessId pid) const {
  const std::uint32_t slot = rec_checked(pid).slot;
  return is_hot_slot(slot) ? invalid_streak_s_[slot] : 0;
}

std::array<std::uint32_t, hpc::kFeatureDim> SimSystem::feature_streaks(
    ProcessId pid) const {
  const std::uint32_t slot = rec_checked(pid).slot;
  return is_hot_slot(slot) ? feature_streak_s_[slot]
                           : std::array<std::uint32_t, hpc::kFeatureDim>{};
}

void SimSystem::end_epoch() {
  if (!epoch_open_) {
    throw std::logic_error("SimSystem::end_epoch: no open epoch");
  }
  // Fold safety net: a driver that stepped slots without folding its
  // ranges still closes the epoch with consistent plane statistics. The
  // staging flags make this idempotent — already-folded ranges are no-ops.
  if (fold_enabled_) fold_plane_range(0, slot_pid_.size());
  epoch_open_ = false;
  ++epoch_;
  commit_lifecycle();
}

void SimSystem::abort_epoch() {
  // The epoch did not complete (epoch_ stays), but shards may have marked
  // completions and callers may have queued lifecycle deltas — both must
  // still commit, or a retry would re-execute finished workloads or lose
  // an admission. Idempotent: layered drivers (engine catch blocks, a
  // supervisor unwinding through them) may each try to abort the same
  // failed epoch, and only the first may commit — a second commit at a
  // closed boundary would double-apply queued deltas.
  if (!epoch_open_) return;
  // Slots that staged before the dispatch failed did commit their samples
  // (history append happens with staging), so their statistics must fold
  // before the lifecycle commit snapshots any retiring slot.
  if (fold_enabled_) fold_plane_range(0, slot_pid_.size());
  epoch_open_ = false;
  commit_lifecycle();
}

void SimSystem::commit_lifecycle() {
  // (1) Deferred kills mark their slots. A slot that completed naturally
  // during the epoch keeps kCompleted: the process finished before the
  // kill could land.
  for (const ProcessId pid : pending_kill_) {
    const std::uint32_t slot = pid_map_.at(pid).slot;
    if (is_hot_slot(slot) && exit_s_[slot] == ExitReason::kRunning) {
      exit_s_[slot] = ExitReason::kKilled;
      epoch_any_exited_.store(true, std::memory_order_relaxed);
    }
  }
  pending_kill_.clear();
  // (2) One stable compaction pass retires completions and kills together.
  if (epoch_any_exited_.load(std::memory_order_relaxed)) retire_dead_slots();
  // (3) Admissions append in spawn order, after compaction, so the slot
  // order stays ascending-pid. Cancelled admissions (killed while
  // pending) were already diverted to the retired state by kill().
  for (const ProcessId pid : pending_admit_) {
    if (pid_map_.at(pid).slot != kPendingSlot) continue;  // cancelled
    admit_slot(pid);
  }
  pending_admit_.clear();
  // (4) Retention-window reclamation, LAST: a cancelled admission queued
  // for reclaim must still be visible to step (3)'s cancellation check at
  // this boundary before its map entry can ever be dropped.
  drain_retired();
}

void SimSystem::run_epoch(util::ThreadPool* pool) {
  begin_epoch();
  const std::size_t live = slot_pid_.size();
  const auto run_range = [this](std::size_t begin, std::size_t end) {
    for (std::size_t slot = begin; slot < end; ++slot) (void)step_slot(slot);
    // Plane-major fold of the range just stepped (no-op unless armed):
    // per-slot independent, so shard boundaries cannot change the bits.
    fold_plane_range(begin, end);
  };

  // Per-slot phase: every slot touches only its own hot-array entries and
  // cold row, and reads the serial share snapshot, so sharding is safe and
  // bit-identical to the sequential loop.
  try {
    if (pool != nullptr) {
      // Degenerate sizes run inline inside the pool, which counts them in
      // inline_run_count() — keeping schedule statistics exact.
      pool->parallel_for(live, run_range);
    } else {
      run_range(0, live);
    }
  } catch (...) {
    abort_epoch();
    throw;
  }
  end_epoch();
}

void SimSystem::run_epochs(std::size_t n, util::ThreadPool* pool) {
  reserve_history(n);
  for (std::size_t i = 0; i < n; ++i) run_epoch(pool);
}

void SimSystem::reserve_history(std::size_t epochs) {
  for (const std::uint32_t row : row_s_) {
    std::vector<hpc::HpcSample>& history = cold_[row].history;
    std::size_t want = history.size() + epochs;
    // A bounded ring never grows past its capacity.
    if (history_cap_ != 0) want = std::min(want, history_cap_);
    history.reserve(want);
  }
}

void SimSystem::reclaim_cold(ColdProc& cold) {
  // Retirement pool: the history buffer (capacity intact) feeds the next
  // admission; the workload is destroyed. The scalar retirement snapshot
  // stays, so the cheap post-mortem observers keep answering.
  // A capacity-less buffer (a cancelled admission that never inherited
  // one) is not worth pooling: popping it later would hand a fresh
  // process an empty buffer in place of a real donation.
  if (cold.history.capacity() != 0) {
    cold.history.clear();
    history_pool_.push_back(std::move(cold.history));
    cold.history = {};
  }
  cold.head = 0;
  cold.workload.reset();
}

void SimSystem::release_row(std::uint32_t row) {
  // Full reclaim: everything reclaim_cold leaves behind goes too — the
  // retirement snapshot resets and the row returns to the free pool for
  // the next spawn. The history buffer is donated even without recycling
  // armed (spawn consumes the pool unconditionally), so a retention-bound
  // run recycles buffers at reclaim granularity.
  ColdProc& cold = cold_[row];
  reclaim_cold(cold);
  cold.retired = RetiredState{};
  free_rows_.push_back(row);
}

void SimSystem::enable_retirement_retention(std::uint64_t window_epochs) {
  if (epoch_open_) {
    throw std::logic_error(
        "SimSystem::enable_retirement_retention: epoch open");
  }
  if (window_epochs == 0) {
    // Drivers read exit state at the boundary that retires a process; a
    // zero window would reclaim it out from under them mid-commit.
    throw std::invalid_argument(
        "SimSystem::enable_retirement_retention: zero window");
  }
  retention_enabled_ = true;
  retention_epochs_ = window_epochs;
}

void SimSystem::drain_retired() {
  if (!retention_enabled_) return;
  while (retire_head_ < retire_queue_.size()) {
    const RetiredPid entry = retire_queue_[retire_head_];
    // Entries carry non-decreasing epochs (epoch_ is monotone), so the
    // first unexpired entry ends the drain.
    if (epoch_ < entry.epoch + retention_epochs_) break;
    ++retire_head_;
    const PidRec rec = pid_map_.at(entry.pid);
    release_row(rec.row);
    pid_map_.erase(entry.pid);
    scheduler_.forget_process(entry.pid);
  }
  if (retire_head_ == retire_queue_.size()) {
    retire_queue_.clear();
    retire_head_ = 0;
  } else if (retire_head_ >= kRetireCompactMin &&
             retire_head_ >= retire_queue_.size() / 2) {
    // Compact the consumed prefix in place (no allocation) so steady-state
    // churn keeps the queue's footprint at O(window), not O(total spawns).
    retire_queue_.erase(
        retire_queue_.begin(),
        retire_queue_.begin() + static_cast<std::ptrdiff_t>(retire_head_));
    retire_head_ = 0;
  }
}

void SimSystem::retire_dead_slots() {
  retire_pending_ = false;
  lifecycle_scratch_.clear();
  const std::size_t n = slot_pid_.size();
  std::size_t w = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const ProcessId pid = slot_pid_[s];
    if (exit_s_[s] == ExitReason::kRunning) {
      if (w != s) {
        slot_pid_[w] = pid;
        pid_map_.at(pid).slot = static_cast<std::uint32_t>(w);
        row_s_[w] = row_s_[s];
        rng_s_[w] = rng_s_[s];
        cgroup_s_[w] = cgroup_s_[s];
        effective_s_[w] = effective_s_[s];
        last_sample_s_[w] = last_sample_s_[s];
        accum_s_[w] = accum_s_[s];
        last_progress_s_[w] = last_progress_s_[s];
        epochs_run_s_[w] = epochs_run_s_[s];
        exit_s_[w] = exit_s_[s];
        invalid_streak_s_[w] = invalid_streak_s_[s];
        feature_streak_s_[w] = feature_streak_s_[s];
        if (plane_enabled_) {
          // The plane follows the same stable remap as every hot array, so
          // column i always belongs to live_processes()[i].
          for (std::size_t r = 0; r < plane_rows_used(); ++r) {
            plane_[r * plane_stride_ + w] = plane_[r * plane_stride_ + s];
          }
          plane_count_[w] = plane_count_[s];
          plane_window_[w] = plane_window_[s];
          plane_window_wrap_[w] = plane_window_wrap_[s];
          if (fold_enabled_) {
            fold_mask_[w] = fold_mask_[s];
            fold_pending_[w] = fold_pending_[s];
          }
        }
      }
      ++w;
    } else {
      PidRec& rec = pid_map_.at(pid);
      ColdProc& cold = cold_[rec.row];
      RetiredState& retired = cold.retired;
      retired.cgroup = cgroup_s_[s];
      retired.effective = effective_s_[s];
      retired.last_sample = last_sample_s_[s];
      // Fold mode keeps the authoritative Welford state in the plane; the
      // retirement snapshot gathers it back into accumulator form so the
      // pid-addressed observers answer from the same bits as ever.
      if (fold_enabled_) accum_s_[s].restore(fold_state(s));
      retired.accumulator = accum_s_[s];
      retired.last_progress = last_progress_s_[s];
      retired.epochs_run = epochs_run_s_[s];
      retired.exit = exit_s_[s];
      rec.slot = kNoSlot;
      lifecycle_scratch_.push_back(pid);
      if (recycle_histories_) reclaim_cold(cold);
      // Retention: schedule the full reclaim for when the window closes.
      // epoch_ is monotone, so queue epochs are non-decreasing (FIFO drain
      // can stop at the first unexpired entry).
      if (retention_enabled_) retire_queue_.push_back({pid, epoch_});
    }
  }
  // One batch call takes the retired pids' weights out of the CFS pool —
  // a dead process must stop competing for CPU from the next epoch on.
  scheduler_.remove_processes(lifecycle_scratch_);
  lifecycle_scratch_.clear();
  // Shrinking never releases capacity, so later spawns reuse it.
  slot_pid_.resize(w);
  row_s_.resize(w);
  rng_s_.resize(w);
  cgroup_s_.resize(w);
  effective_s_.resize(w);
  last_sample_s_.resize(w);
  accum_s_.resize(w);
  last_progress_s_.resize(w);
  epochs_run_s_.resize(w);
  exit_s_.resize(w);
  invalid_streak_s_.resize(w);
  feature_streak_s_.resize(w);
  if (plane_enabled_) {
    plane_count_.resize(w);
    plane_window_.resize(w);
    plane_window_wrap_.resize(w);
    if (fold_enabled_) {
      fold_mask_.resize(w);
      fold_pending_.resize(w);
    }
  }
}

void SimSystem::set_cgroup_caps(ProcessId pid, std::optional<double> cpu,
                                std::optional<double> mem,
                                std::optional<double> net,
                                std::optional<double> fs) {
  const PidRec rec = rec_checked(pid);
  ResourceShares& cg = is_hot_slot(rec.slot) ? cgroup_s_[rec.slot]
                                             : cold_[rec.row].retired.cgroup;
  const auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  if (cpu) cg.cpu = clamp01(*cpu);
  if (mem) cg.mem = clamp01(*mem);
  if (net) cg.net = clamp01(*net);
  if (fs) cg.fs = clamp01(*fs);
}

void SimSystem::clear_cgroup_caps(ProcessId pid) {
  const PidRec rec = rec_checked(pid);
  (is_hot_slot(rec.slot) ? cgroup_s_[rec.slot]
                         : cold_[rec.row].retired.cgroup) = ResourceShares{};
}

void SimSystem::apply_sched_threat_delta(ProcessId pid, double delta_threat) {
  (void)rec_checked(pid);  // validate pid
  scheduler_.apply_threat_delta(pid, delta_threat);
}

void SimSystem::reset_sched_weight(ProcessId pid) {
  (void)rec_checked(pid);  // validate pid
  scheduler_.reset_weight(pid);
}

void SimSystem::kill(ProcessId pid) {
  const PidRec rec = rec_checked(pid);
  const std::uint32_t slot = rec.slot;
  if (slot == kPendingSlot) {
    // Killed before its admission committed: cancel the admission. The
    // process never runs; it exits straight into the retired state, and
    // its spawn-registered scheduler weight parks like any retirement's.
    ColdProc& cold = cold_[rec.row];
    pid_map_.at(pid).slot = kNoSlot;
    cold.retired.exit = ExitReason::kKilled;
    scheduler_.remove_process(pid);
    if (recycle_histories_) reclaim_cold(cold);
    // Cancelled admissions retire here, not in a compaction pass, so this
    // is their entry into the retention queue.
    if (retention_enabled_) retire_queue_.push_back({pid, epoch_});
    return;
  }
  if (slot == kNoSlot || exit_s_[slot] != ExitReason::kRunning) return;
  if (epoch_open_) {
    // The dispatch may be mid-flight over this slot: defer to the epoch
    // boundary so the process runs the open epoch in full and results
    // cannot depend on where in the epoch the kill landed.
    pending_kill_.push_back(pid);
    return;
  }
  // Mark now, compact later (next live_processes() or begin_epoch): every
  // pid-addressed observer already answers correctly for a marked slot,
  // and deferring keeps a mass-termination commit — k kills applied
  // back-to-back — at one O(live) compaction pass instead of k.
  exit_s_[slot] = ExitReason::kKilled;
  retire_pending_ = true;
}

bool SimSystem::is_live(ProcessId pid) const {
  const std::uint32_t slot = rec_checked(pid).slot;
  return is_hot_slot(slot) && exit_s_[slot] == ExitReason::kRunning;
}

ExitReason SimSystem::exit_reason(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return is_hot_slot(rec.slot) ? exit_s_[rec.slot]
                               : cold_[rec.row].retired.exit;
}

const Workload& SimSystem::workload(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  if (cold_[rec.row].workload == nullptr) {
    throw std::logic_error("SimSystem::workload: reclaimed by retirement pool");
  }
  return *cold_[rec.row].workload;
}

Workload& SimSystem::workload(ProcessId pid) {
  const PidRec rec = rec_checked(pid);
  if (cold_[rec.row].workload == nullptr) {
    throw std::logic_error("SimSystem::workload: reclaimed by retirement pool");
  }
  return *cold_[rec.row].workload;
}

const ResourceShares& SimSystem::effective_shares(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return is_hot_slot(rec.slot) ? effective_s_[rec.slot]
                               : cold_[rec.row].retired.effective;
}

const ResourceShares& SimSystem::cgroup_caps(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return is_hot_slot(rec.slot) ? cgroup_s_[rec.slot]
                               : cold_[rec.row].retired.cgroup;
}

const hpc::HpcSample& SimSystem::last_sample(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return is_hot_slot(rec.slot) ? last_sample_s_[rec.slot]
                               : cold_[rec.row].retired.last_sample;
}

const std::vector<hpc::HpcSample>& SimSystem::sample_history(
    ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return cold_[rec.row].history;
}

ml::WindowSummary SimSystem::window_summary(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  const std::uint32_t slot = rec.slot;
  std::span<const hpc::HpcSample> older;
  std::span<const hpc::HpcSample> wrap;
  history_spans(cold_[rec.row], older, wrap);
  if (fold_enabled_ && is_hot_slot(slot)) {
    // Fold mode assembles BY VALUE straight off the plane rows: no shared
    // accumulator refresh, so parallel fused shards can query their own
    // (already-folded) slots concurrently.
    ml::WindowSummary out;
    out.count = plane_count_[slot];
    out.stale_mask = fold_mask_[slot];
    const double* col = plane_.data() + slot;
    for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
      out.newest[f] = col[f * plane_stride_];
    }
    if (out.count != 0) {
      for (std::size_t f = 0; f < hpc::kFeatureDim; ++f) {
        out.mean[f] = col[(hpc::kFeatureDim + f) * plane_stride_];
        out.stddev[f] = col[(2 * hpc::kFeatureDim + f) * plane_stride_];
      }
    }
    out.window = older;
    out.window_wrap = wrap;
    return out;
  }
  ml::WindowSummary out = window_accumulator(pid).summary(older);
  out.window_wrap = wrap;
  return out;
}

const ml::WindowAccumulator& SimSystem::window_accumulator(
    ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  const std::uint32_t slot = rec.slot;
  if (!is_hot_slot(slot)) return cold_[rec.row].retired.accumulator;
  if (fold_enabled_) {
    // The authoritative state lives in the plane rows; refresh the slot's
    // (otherwise stale) accumulator from them before handing it out.
    // Logically const, like live_processes()'s compaction — and serial-
    // phase only: parallel shards must use window_summary() instead.
    const_cast<SimSystem*>(this)->accum_s_[slot].restore(fold_state(slot));
  }
  return accum_s_[slot];
}

double SimSystem::last_progress(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return is_hot_slot(rec.slot) ? last_progress_s_[rec.slot]
                               : cold_[rec.row].retired.last_progress;
}

std::uint64_t SimSystem::epochs_run(ProcessId pid) const {
  const PidRec rec = rec_checked(pid);
  return is_hot_slot(rec.slot) ? epochs_run_s_[rec.slot]
                               : cold_[rec.row].retired.epochs_run;
}

std::span<const ProcessId> SimSystem::live_processes() const {
  // The slot->pid array IS the live list: no separate rebuild, no
  // allocation, ever. Kills since the last epoch compact here first —
  // logically const (the live *set* is unchanged; only the internal slot
  // layout tightens), hence the cast.
  if (retire_pending_) const_cast<SimSystem*>(this)->retire_dead_slots();
  return slot_pid_;
}

snapshot::SystemImage SimSystem::snapshot_state() const {
  if (epoch_open_) {
    throw std::logic_error("SimSystem::snapshot_state: epoch in progress");
  }
  // Closed-boundary invariant: the lifecycle queues drain at every
  // end_epoch/abort_epoch, so nothing can be pending here.
  if (!pending_admit_.empty() || !pending_kill_.empty()) {
    throw std::logic_error(
        "SimSystem::snapshot_state: lifecycle queues not drained");
  }

  snapshot::SystemImage image;
  image.epoch_ms = platform_.epoch_ms;
  image.hpc_noise = platform_.hpc_noise;
  image.scheduler = scheduler_.config();
  image.rng = rng_.state();
  image.epoch = epoch_;
  image.retire_pending = retire_pending_;
  image.recycle_histories = recycle_histories_;
  image.counter_rng = counter_rng_;
  image.history_capacity = history_cap_;
  image.total_spawned = next_pid_;
  image.retention_enabled = retention_enabled_;
  image.retention_epochs = retention_epochs_;
  image.retire_queue.reserve(retire_queue_.size() - retire_head_);
  for (std::size_t i = retire_head_; i < retire_queue_.size(); ++i) {
    image.retire_queue.emplace_back(retire_queue_[i].pid,
                                    retire_queue_[i].epoch);
  }

  image.slots.reserve(slot_pid_.size());
  for (std::size_t s = 0; s < slot_pid_.size(); ++s) {
    snapshot::SlotImage slot;
    slot.pid = slot_pid_[s];
    slot.rng = rng_s_[s].state();
    slot.cgroup = cgroup_s_[s];
    slot.effective = effective_s_[s];
    slot.last_sample = last_sample_s_[s];
    // Fold mode: gather the authoritative plane rows back into
    // accumulator form (bit-exact round trip), so the image format is
    // identical either way.
    slot.accum = fold_enabled_ ? fold_state(s) : accum_s_[s].state();
    slot.last_progress = last_progress_s_[s];
    slot.epochs_run = epochs_run_s_[s];
    slot.exit = static_cast<std::uint8_t>(exit_s_[s]);
    slot.invalid_streak = invalid_streak_s_[s];
    slot.feature_streak = feature_streak_s_[s];
    image.slots.push_back(std::move(slot));
  }

  // Keyed cold rows, canonicalized to ascending-pid order: the pid map's
  // bucket order depends on its capacity history (which a restore does not
  // reproduce), and capture bytes must not.
  std::vector<std::pair<ProcessId, PidRec>> tracked;
  tracked.reserve(pid_map_.size());
  pid_map_.for_each([&](ProcessId pid, const PidRec& rec) {
    tracked.emplace_back(pid, rec);
  });
  std::sort(tracked.begin(), tracked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  image.procs.reserve(tracked.size());
  for (const auto& [pid, rec] : tracked) {
    const ColdProc& cold = cold_[rec.row];
    snapshot::ProcImage proc;
    proc.pid = pid;
    proc.slot = rec.slot;
    if (cold.workload != nullptr) {
      proc.workload = snapshot::poly_image(*cold.workload);
    }
    if (history_cap_ != 0 && cold.history.size() == history_cap_ &&
        cold.head != 0) {
      // Linearize a wrapped ring oldest-first, so the image is layout-
      // independent and a restored ring restarts with head 0 pointing at
      // its (then-oldest) first element.
      proc.history.reserve(history_cap_);
      proc.history.insert(proc.history.end(),
                          cold.history.begin() +
                              static_cast<std::ptrdiff_t>(cold.head),
                          cold.history.end());
      proc.history.insert(proc.history.end(), cold.history.begin(),
                          cold.history.begin() +
                              static_cast<std::ptrdiff_t>(cold.head));
    } else {
      proc.history = cold.history;
    }
    proc.retired_cgroup = cold.retired.cgroup;
    proc.retired_effective = cold.retired.effective;
    proc.retired_last_sample = cold.retired.last_sample;
    proc.retired_accum = cold.retired.accumulator.state();
    proc.retired_last_progress = cold.retired.last_progress;
    proc.retired_epochs_run = cold.retired.epochs_run;
    proc.retired_exit = static_cast<std::uint8_t>(cold.retired.exit);
    image.procs.push_back(std::move(proc));
  }

  // Already ascending-pid (factor_entries canonicalizes), and exactly the
  // tracked pid set: weights and cold rows are created/reclaimed together.
  image.sched_entries = scheduler_.factor_entries();
  return image;
}

void SimSystem::restore_from(const snapshot::SystemImage& image,
                             const snapshot::WorkloadRegistry& registry) {
  using util::SerialError;
  if (epoch_open_) {
    throw std::logic_error("SimSystem::restore_from: epoch in progress");
  }

  // Compatibility: the platform/scheduler configuration is code-level (set
  // at construction); the image only records its numbers for this check.
  const SchedulerConfig& sc = scheduler_.config();
  const SchedulerConfig& ic = image.scheduler;
  if (platform_.epoch_ms != image.epoch_ms ||
      platform_.hpc_noise != image.hpc_noise ||
      sc.targeted_latency_ms != ic.targeted_latency_ms ||
      sc.gamma != ic.gamma || sc.weight_levels != ic.weight_levels ||
      sc.default_level != ic.default_level ||
      sc.background_weight_units != ic.background_weight_units ||
      sc.min_share_fraction != ic.min_share_fraction) {
    throw SerialError(SerialError::Code::kIncompatible,
                      "restore: platform/scheduler configuration mismatch");
  }

  // Structural validation — everything throws before any mutation. The v5
  // keyed form: cold rows and scheduler entries are sparse, ascending-pid,
  // and must key exactly the same pid set.
  const std::size_t procs = image.procs.size();
  ProcessId prev_row_pid = 0;
  for (std::size_t i = 0; i < procs; ++i) {
    const snapshot::ProcImage& proc = image.procs[i];
    if (proc.pid >= image.total_spawned ||
        (i != 0 && proc.pid <= prev_row_pid)) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: cold rows not ascending-pid / pid beyond "
                        "total_spawned");
    }
    prev_row_pid = proc.pid;
  }
  if (image.sched_entries.size() != procs) {
    throw SerialError(SerialError::Code::kMalformed,
                      "restore: scheduler entries do not match cold rows");
  }
  for (std::size_t i = 0; i < procs; ++i) {
    const sim::SchedFactorEntry& entry = image.sched_entries[i];
    // Weights and rows are created/reclaimed together, so the keyed sets
    // are element-wise equal; the sign must match liveness (hot slots —
    // compacted or not — are runnable, retired rows are parked).
    const bool hot = is_hot_slot(image.procs[i].slot);
    if (entry.pid != image.procs[i].pid || entry.factor == 0.0 ||
        (entry.factor > 0.0) != hot) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: scheduler entry inconsistent with its row");
    }
  }
  if (image.history_capacity != 0) {
    for (const snapshot::ProcImage& proc : image.procs) {
      if (proc.history.size() > image.history_capacity) {
        throw SerialError(SerialError::Code::kMalformed,
                          "restore: history exceeds its bounded capacity");
      }
    }
  }
  // Rows are ascending-pid (just checked), so pid -> row index resolves by
  // binary search; -1 = untracked.
  const auto proc_index = [&image](ProcessId pid) -> std::ptrdiff_t {
    const auto it = std::lower_bound(
        image.procs.begin(), image.procs.end(), pid,
        [](const snapshot::ProcImage& p, ProcessId v) { return p.pid < v; });
    if (it == image.procs.end() || it->pid != pid) return -1;
    return it - image.procs.begin();
  };
  ProcessId prev_pid = 0;
  for (std::size_t s = 0; s < image.slots.size(); ++s) {
    const snapshot::SlotImage& slot = image.slots[s];
    const std::ptrdiff_t row = proc_index(slot.pid);
    if (row < 0 || (s != 0 && slot.pid <= prev_pid) ||
        image.procs[static_cast<std::size_t>(row)].slot != s ||
        slot.exit > 2) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: hot slot table inconsistent");
    }
    prev_pid = slot.pid;
  }
  for (std::size_t i = 0; i < procs; ++i) {
    const snapshot::ProcImage& proc = image.procs[i];
    const bool hot = is_hot_slot(proc.slot);
    if ((proc.slot != kNoSlot && !hot) ||
        (hot && (proc.slot >= image.slots.size() ||
                 image.slots[proc.slot].pid != proc.pid)) ||
        proc.retired_exit > 2) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: pid -> slot table inconsistent");
    }
    if (hot && !proc.workload.present()) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: live slot without a workload");
    }
  }
  // Retention state: queue entries must reference tracked, retired rows,
  // with non-decreasing epochs no later than the capture epoch, no pid
  // twice (a reclaim is one-shot), and no queue at all without the policy.
  if (!image.retention_enabled &&
      (!image.retire_queue.empty() || image.retention_epochs != 0)) {
    throw SerialError(SerialError::Code::kMalformed,
                      "restore: retirement queue without retention policy");
  }
  if (image.retention_enabled && image.retention_epochs == 0) {
    throw SerialError(SerialError::Code::kMalformed,
                      "restore: zero retention window");
  }
  std::uint64_t prev_epoch = 0;
  for (std::size_t i = 0; i < image.retire_queue.size(); ++i) {
    const auto& [pid, retired_at] = image.retire_queue[i];
    const std::ptrdiff_t row = proc_index(pid);
    if (row < 0 ||
        is_hot_slot(image.procs[static_cast<std::size_t>(row)].slot) ||
        (i != 0 && retired_at < prev_epoch) || retired_at > image.epoch) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: retirement queue inconsistent");
    }
    prev_epoch = retired_at;
  }
  {
    std::vector<ProcessId> queue_pids;
    queue_pids.reserve(image.retire_queue.size());
    for (const auto& [pid, retired_at] : image.retire_queue) {
      queue_pids.push_back(pid);
    }
    std::sort(queue_pids.begin(), queue_pids.end());
    if (std::adjacent_find(queue_pids.begin(), queue_pids.end()) !=
        queue_pids.end()) {
      throw SerialError(SerialError::Code::kMalformed,
                        "restore: pid queued for reclamation twice");
    }
  }

  // Stage the workloads: loader failures (unknown type, malformed payload)
  // must leave the target untouched.
  std::vector<std::unique_ptr<Workload>> staged(procs);
  for (std::size_t pid = 0; pid < procs; ++pid) {
    if (image.procs[pid].workload.present()) {
      staged[pid] = registry.load(image.procs[pid].workload);
    }
  }

  // Commit.
  rng_.set_state(image.rng);
  // The RNG kind is run state the image carries (set_state only restores
  // the counters/words): adopt it both ways, so restoring a xoshiro image
  // into a counter-mode system — or vice versa — replays faithfully.
  counter_rng_ = image.counter_rng;
  rng_.set_counter_mode(counter_rng_);
  history_cap_ = image.history_capacity;
  epoch_ = image.epoch;
  retire_pending_ = image.retire_pending;
  recycle_histories_ = image.recycle_histories;
  epoch_any_exited_.store(false, std::memory_order_relaxed);
  pending_admit_.clear();
  pending_kill_.clear();
  history_pool_.clear();
  next_pid_ = static_cast<std::size_t>(image.total_spawned);
  retention_enabled_ = image.retention_enabled;
  retention_epochs_ = image.retention_epochs;
  retire_queue_.clear();
  retire_head_ = 0;
  for (const auto& [pid, retired_at] : image.retire_queue) {
    retire_queue_.push_back({pid, retired_at});
  }

  // Cold rows pack densely in image (ascending-pid) order; the pid map is
  // rebuilt from scratch, so its capacity — and therefore its bucket
  // layout — is a pure function of the tracked count, never of the churn
  // history that produced the image. No observable output iterates the
  // map, so the layout difference is invisible.
  cold_.clear();
  cold_.resize(procs);
  free_rows_.clear();
  pid_map_.clear();
  pid_map_.reserve(procs);
  for (std::size_t i = 0; i < procs; ++i) {
    const snapshot::ProcImage& proc = image.procs[i];
    ColdProc& cold = cold_[i];
    cold.workload = std::move(staged[i]);
    cold.history = proc.history;
    // Image histories are linearized oldest-first, so a full ring resumes
    // with head 0 = its oldest sample (exactly where the overwrite goes).
    cold.head = 0;
    cold.retired.cgroup = proc.retired_cgroup;
    cold.retired.effective = proc.retired_effective;
    cold.retired.last_sample = proc.retired_last_sample;
    cold.retired.accumulator.restore(proc.retired_accum);
    cold.retired.last_progress = proc.retired_last_progress;
    cold.retired.epochs_run = proc.retired_epochs_run;
    cold.retired.exit = static_cast<ExitReason>(proc.retired_exit);
    pid_map_.insert(proc.pid,
                    PidRec{proc.slot, static_cast<std::uint32_t>(i)});
  }

  const std::size_t live = image.slots.size();
  slot_pid_.resize(live);
  row_s_.resize(live);
  factor_s_.assign(live, 0.0);
  rng_s_.resize(live);
  cgroup_s_.resize(live);
  effective_s_.resize(live);
  last_sample_s_.resize(live);
  accum_s_.resize(live);
  last_progress_s_.resize(live);
  epochs_run_s_.resize(live);
  exit_s_.resize(live);
  invalid_streak_s_.resize(live);
  feature_streak_s_.resize(live);
  for (std::size_t s = 0; s < live; ++s) {
    const snapshot::SlotImage& slot = image.slots[s];
    slot_pid_[s] = slot.pid;
    row_s_[s] = pid_map_.at(slot.pid).row;
    rng_s_[s].set_state(slot.rng);
    rng_s_[s].set_counter_mode(counter_rng_);
    cgroup_s_[s] = slot.cgroup;
    effective_s_[s] = slot.effective;
    last_sample_s_[s] = slot.last_sample;
    accum_s_[s].restore(slot.accum);
    last_progress_s_[s] = slot.last_progress;
    epochs_run_s_[s] = slot.epochs_run;
    exit_s_[s] = static_cast<ExitReason>(slot.exit);
    invalid_streak_s_[s] = slot.invalid_streak;
    feature_streak_s_[s] = slot.feature_streak;
  }

  scheduler_.restore_factor_entries(image.sched_entries);

  // The feature-plane arming flags are run config, not snapshot state
  // (the image carries none): the target keeps whatever sections its own
  // engine armed at construction. Without fold mode the plane CONTENTS are
  // derived — step_slot rewrites every live column before the next batch
  // kernel reads it, so size (not bits) is all restore must provide. Fold
  // mode instead re-seeds the authoritative Welford rows from the restored
  // accumulators (the exact bits the image's capture gathered out).
  if (plane_enabled_) {
    plane_count_.assign(live, 0);
    plane_window_.assign(live, {});
    plane_window_wrap_.assign(live, {});
    reserve_plane();
    if (fold_enabled_) {
      fold_mask_.assign(live, 0);
      fold_pending_.assign(live, 0);
      plane_.assign(plane_rows_used() * plane_stride_, 0.0);
      scatter_accums_to_plane();
    }
  }
}

}  // namespace valkyrie::sim
