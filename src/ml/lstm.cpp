#include "ml/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/serial.hpp"

namespace valkyrie::ml {
namespace {

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

struct Lstm::ForwardState {
  // Per time step: input, gate activations (post-nonlinearity), cell, hidden.
  std::vector<std::vector<double>> x, gi, gf, gg, go, c, h;
  double output = 0.0;  // final sigmoid probability
};

Lstm::Lstm(LstmConfig config, std::uint64_t seed) : config_(config) {
  const std::size_t d = config_.input_dim;
  const std::size_t hdim = config_.hidden_dim;
  if (d == 0 || hdim == 0) {
    throw std::invalid_argument("Lstm: zero dimension");
  }
  params_.resize(param_count());
  util::Rng rng(seed);
  const double scale = std::sqrt(1.0 / static_cast<double>(d + hdim));
  for (double& p : params_) p = rng.uniform(-scale, scale);
  // Forget-gate bias starts at 1 (standard trick: remember by default).
  const std::size_t w_size = 4 * hdim * (d + hdim);
  for (std::size_t j = 0; j < hdim; ++j) params_[w_size + hdim + j] = 1.0;
  adam_m_.assign(params_.size(), 0.0);
  adam_v_.assign(params_.size(), 0.0);
}

std::size_t Lstm::param_count() const noexcept {
  const std::size_t d = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  return 4 * h * (d + h) + 4 * h + h + 1;
}

void Lstm::advance_cell(std::span<const double> x, std::vector<double>& h,
                        std::vector<double>& c, std::vector<double>& gates,
                        std::vector<double>& gi, std::vector<double>& gf,
                        std::vector<double>& gg,
                        std::vector<double>& go) const {
  const std::size_t d = config_.input_dim;
  const std::size_t hdim = config_.hidden_dim;
  const std::size_t w_size = 4 * hdim * (d + hdim);
  const double* w = params_.data();
  const double* b = params_.data() + w_size;
  // gates = W [x; h_prev] + b, rows ordered i, f, g, o per hidden unit
  // block: row r of W has (d + hdim) columns.
  for (std::size_t r = 0; r < 4 * hdim; ++r) {
    const double* row = w + r * (d + hdim);
    double sum = b[r];
    for (std::size_t k = 0; k < d; ++k) sum += row[k] * x[k];
    for (std::size_t k = 0; k < hdim; ++k) sum += row[d + k] * h[k];
    gates[r] = sum;
  }
  for (std::size_t j = 0; j < hdim; ++j) {
    gi[j] = sigmoid(gates[j]);
    gf[j] = sigmoid(gates[hdim + j]);
    gg[j] = std::tanh(gates[2 * hdim + j]);
    go[j] = sigmoid(gates[3 * hdim + j]);
  }
  for (std::size_t j = 0; j < hdim; ++j) {
    c[j] = gf[j] * c[j] + gi[j] * gg[j];
    h[j] = go[j] * std::tanh(c[j]);
  }
}

double Lstm::output_prob(std::span<const double> h) const {
  const std::size_t d = config_.input_dim;
  const std::size_t hdim = config_.hidden_dim;
  const std::size_t w_size = 4 * hdim * (d + hdim);
  const double* w_out = params_.data() + w_size + 4 * hdim;
  double logit = *(w_out + hdim);  // b_out
  for (std::size_t j = 0; j < hdim; ++j) logit += w_out[j] * h[j];
  return sigmoid(logit);
}

double Lstm::forward(std::span<const std::vector<double>> sequence,
                     ForwardState* record) const {
  const std::size_t d = config_.input_dim;
  const std::size_t hdim = config_.hidden_dim;

  std::vector<double> h(hdim, 0.0);
  std::vector<double> c(hdim, 0.0);
  std::vector<double> gates(4 * hdim);
  std::vector<double> gi(hdim), gf(hdim), gg(hdim), go(hdim);

  for (const std::vector<double>& x : sequence) {
    if (x.size() != d) throw std::invalid_argument("Lstm: input dim mismatch");
    advance_cell(x, h, c, gates, gi, gf, gg, go);
    if (record != nullptr) {
      record->x.push_back(x);
      record->gi.push_back(gi);
      record->gf.push_back(gf);
      record->gg.push_back(gg);
      record->go.push_back(go);
      record->c.push_back(c);
      record->h.push_back(h);
    }
  }

  const double p = output_prob(h);
  if (record != nullptr) record->output = p;
  return p;
}

Lstm::StreamState Lstm::stream_begin() const {
  return {std::vector<double>(config_.hidden_dim, 0.0),
          std::vector<double>(config_.hidden_dim, 0.0), 0};
}

void Lstm::stream_step(StreamState& state,
                       std::span<const double> features) const {
  if (features.size() != config_.input_dim ||
      state.h.size() != config_.hidden_dim ||
      state.c.size() != config_.hidden_dim) {
    throw std::invalid_argument("Lstm::stream_step: dimension mismatch");
  }
  std::vector<double> x =
      scaler_.fitted() ? scaler_.transform(features)
                       : std::vector<double>(features.begin(), features.end());
  const std::size_t hdim = config_.hidden_dim;
  std::vector<double> gates(4 * hdim);
  std::vector<double> gi(hdim), gf(hdim), gg(hdim), go(hdim);
  advance_cell(x, state.h, state.c, gates, gi, gf, gg, go);
  ++state.steps;
}

double Lstm::stream_prob(const StreamState& state) const {
  if (state.h.size() != config_.hidden_dim) {
    throw std::invalid_argument("Lstm::stream_prob: state size mismatch");
  }
  if (state.steps == 0) return 0.0;  // predict() on an empty sequence
  return output_prob(state.h);
}

void Lstm::stream_save(const StreamState& state, util::ByteWriter& out) {
  out.f64_span(state.h);
  out.f64_span(state.c);
  out.u64(state.steps);
}

Lstm::StreamState Lstm::stream_load(util::ByteReader& in) {
  StreamState state;
  state.h = in.f64_vec();
  state.c = in.f64_vec();
  state.steps = in.u64();
  if (state.h.size() != state.c.size()) {
    throw util::SerialError(util::SerialError::Code::kMalformed,
                            "Lstm stream state: h/c size mismatch");
  }
  return state;
}

void Lstm::snapshot_save(util::ByteWriter& out) const {
  out.u64(config_.input_dim);
  out.u64(config_.hidden_dim);
  out.f64_span(scaler_.means());
  out.f64_span(scaler_.inv_stddevs());
  out.f64_span(params_);
  out.f64_span(adam_m_);
  out.f64_span(adam_v_);
  out.u64(adam_t_);
}

Lstm Lstm::snapshot_load(util::ByteReader& in) {
  using util::SerialError;
  LstmConfig config;
  config.input_dim = static_cast<std::size_t>(in.u64());
  config.hidden_dim = static_cast<std::size_t>(in.u64());
  // Keep the dimensions sane before the constructor sizes the parameter
  // vector from their product (a corrupt image must not drive a huge
  // allocation; real models are orders of magnitude smaller).
  constexpr std::size_t kMaxDim = 1 << 16;
  if (config.input_dim == 0 || config.hidden_dim == 0 ||
      config.input_dim > kMaxDim || config.hidden_dim > kMaxDim) {
    throw SerialError(SerialError::Code::kMalformed,
                      "Lstm snapshot: implausible dimensions");
  }
  Lstm model(config, 0);
  std::vector<double> mean = in.f64_vec();
  std::vector<double> inv_std = in.f64_vec();
  if (mean.size() != inv_std.size() ||
      (!mean.empty() && mean.size() != config.input_dim)) {
    throw SerialError(SerialError::Code::kMalformed,
                      "Lstm snapshot: scaler dimension mismatch");
  }
  if (!mean.empty()) model.scaler_.restore(std::move(mean), std::move(inv_std));
  model.params_ = in.f64_vec();
  model.adam_m_ = in.f64_vec();
  model.adam_v_ = in.f64_vec();
  if (model.params_.size() != model.param_count() ||
      model.adam_m_.size() != model.params_.size() ||
      model.adam_v_.size() != model.params_.size()) {
    throw SerialError(SerialError::Code::kMalformed,
                      "Lstm snapshot: parameter count mismatch");
  }
  model.adam_t_ = in.u64();
  return model;
}

std::uint64_t Lstm::param_hash() const noexcept {
  std::uint64_t h = util::fnv1a(std::string_view("lstm"));
  h = util::fnv1a(std::span<const double>(params_), h);
  h = util::fnv1a(scaler_.means(), h);
  h = util::fnv1a(scaler_.inv_stddevs(), h);
  return h;
}

double Lstm::predict(std::span<const std::vector<double>> sequence) const {
  if (sequence.empty()) return 0.0;
  if (!scaler_.fitted()) return forward(sequence, nullptr);
  std::vector<std::vector<double>> scaled;
  scaled.reserve(sequence.size());
  for (const std::vector<double>& x : sequence) {
    scaled.push_back(scaler_.transform(x));
  }
  return forward(scaled, nullptr);
}

double Lstm::backward(std::span<const std::vector<double>> sequence,
                      double target, double sample_weight,
                      std::vector<double>& grad) const {
  const std::size_t d = config_.input_dim;
  const std::size_t hdim = config_.hidden_dim;
  const std::size_t w_size = 4 * hdim * (d + hdim);
  const double* w = params_.data();
  const double* w_out = params_.data() + w_size + 4 * hdim;

  ForwardState fs;
  const double p = forward(sequence, &fs);
  const std::size_t steps = fs.x.size();
  if (steps == 0) return 0.0;

  const double loss = -(target * std::log(std::max(p, 1e-12)) +
                        (1.0 - target) * std::log(std::max(1.0 - p, 1e-12)));

  double* g_w = grad.data();
  double* g_b = grad.data() + w_size;
  double* g_wout = grad.data() + w_size + 4 * hdim;
  double* g_bout = g_wout + hdim;

  // Output layer: dLoss/dlogit = p - target.
  const double dlogit = (p - target) * sample_weight;
  std::vector<double> dh(hdim, 0.0);
  for (std::size_t j = 0; j < hdim; ++j) {
    g_wout[j] += dlogit * fs.h[steps - 1][j];
    dh[j] = dlogit * w_out[j];
  }
  *g_bout += dlogit;

  std::vector<double> dc(hdim, 0.0);
  for (std::size_t t = steps; t-- > 0;) {
    const std::vector<double>& c_t = fs.c[t];
    const std::vector<double>& c_prev =
        t > 0 ? fs.c[t - 1] : std::vector<double>(hdim, 0.0);
    const std::vector<double>& h_prev =
        t > 0 ? fs.h[t - 1] : std::vector<double>(hdim, 0.0);

    std::vector<double> dgates(4 * hdim);
    for (std::size_t j = 0; j < hdim; ++j) {
      const double tanh_c = std::tanh(c_t[j]);
      const double go = fs.go[t][j];
      const double dc_total = dc[j] + dh[j] * go * (1.0 - tanh_c * tanh_c);
      const double gi = fs.gi[t][j];
      const double gf = fs.gf[t][j];
      const double gg = fs.gg[t][j];
      // Gate pre-activation gradients.
      dgates[j] = dc_total * gg * gi * (1.0 - gi);                   // input
      dgates[hdim + j] = dc_total * c_prev[j] * gf * (1.0 - gf);     // forget
      dgates[2 * hdim + j] = dc_total * gi * (1.0 - gg * gg);        // cell
      dgates[3 * hdim + j] = dh[j] * tanh_c * go * (1.0 - go);       // output
      dc[j] = dc_total * gf;  // carry to t-1
    }

    std::vector<double> dh_prev(hdim, 0.0);
    for (std::size_t r = 0; r < 4 * hdim; ++r) {
      const double* row = w + r * (d + hdim);
      double* g_row = g_w + r * (d + hdim);
      const double dg = dgates[r];
      for (std::size_t k = 0; k < d; ++k) g_row[k] += dg * fs.x[t][k];
      for (std::size_t k = 0; k < hdim; ++k) {
        g_row[d + k] += dg * h_prev[k];
        dh_prev[k] += dg * row[d + k];
      }
      g_b[r] += dg;
    }
    dh = std::move(dh_prev);
  }
  return loss * sample_weight;
}

void Lstm::train(const TraceSet& train_set, const LstmTrainOptions& options) {
  // Build (sequence, label) pairs: full tails plus random prefixes.
  struct Seq {
    std::vector<std::vector<double>> steps;
    bool malicious;
  };
  util::Rng rng(options.seed);

  // Fit the input scaler on every training feature vector first.
  std::vector<std::vector<double>> all_features;
  std::size_t total_samples = 0;
  for (const LabeledTrace& trace : train_set.traces) {
    total_samples += trace.samples.size();
  }
  all_features.reserve(total_samples);
  for (const LabeledTrace& trace : train_set.traces) {
    for (const hpc::HpcSample& s : trace.samples) {
      const hpc::FeatureVec f = hpc::to_features(s);
      all_features.emplace_back(f.begin(), f.end());
    }
  }
  if (all_features.empty()) {
    throw std::invalid_argument("Lstm::train: no sequences");
  }
  scaler_.fit(all_features);

  std::vector<Seq> seqs;
  for (const LabeledTrace& trace : train_set.traces) {
    if (trace.samples.empty()) continue;
    std::vector<std::vector<double>> full;
    full.reserve(trace.samples.size());
    for (const hpc::HpcSample& s : trace.samples) {
      hpc::FeatureVec f = hpc::to_features(s);
      scaler_.transform(f, f);  // standardise in place
      full.emplace_back(f.begin(), f.end());
    }
    for (int k = 0; k < options.prefixes_per_trace; ++k) {
      const std::size_t len = 1 + rng.below(full.size());
      const std::size_t start =
          len > options.max_bptt_steps ? len - options.max_bptt_steps : 0;
      Seq seq;
      seq.steps.assign(full.begin() + static_cast<long>(start),
                       full.begin() + static_cast<long>(len));
      seq.malicious = trace.malicious;
      seqs.push_back(std::move(seq));
    }
  }
  if (seqs.empty()) throw std::invalid_argument("Lstm::train: no sequences");

  const auto n_pos = static_cast<double>(
      std::count_if(seqs.begin(), seqs.end(),
                    [](const Seq& s) { return s.malicious; }));
  const auto n_total = static_cast<double>(seqs.size());
  if (n_pos == 0.0 || n_pos == n_total) {
    throw std::invalid_argument("Lstm::train: need both classes");
  }
  const double w_pos = n_total / (2.0 * n_pos);
  const double w_neg = n_total / (2.0 * (n_total - n_pos));

  std::vector<double> grad(params_.size());
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Shuffle sequence order.
    for (std::size_t i = seqs.size(); i > 1; --i) {
      std::swap(seqs[i - 1], seqs[rng.below(i)]);
    }
    for (const Seq& seq : seqs) {
      std::fill(grad.begin(), grad.end(), 0.0);
      backward(seq.steps, seq.malicious ? 1.0 : 0.0,
               seq.malicious ? w_pos : w_neg, grad);

      // Clip by global norm.
      double norm_sq = 0.0;
      for (const double g : grad) norm_sq += g * g;
      const double norm = std::sqrt(norm_sq);
      const double clip = norm > options.grad_clip_norm
                              ? options.grad_clip_norm / norm
                              : 1.0;

      ++adam_t_;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
      for (std::size_t i = 0; i < params_.size(); ++i) {
        const double g = grad[i] * clip;
        adam_m_[i] = kBeta1 * adam_m_[i] + (1.0 - kBeta1) * g;
        adam_v_[i] = kBeta2 * adam_v_[i] + (1.0 - kBeta2) * g * g;
        const double m_hat = adam_m_[i] / bc1;
        const double v_hat = adam_v_[i] / bc2;
        params_[i] -= options.learning_rate * m_hat /
                      (std::sqrt(v_hat) + kEps);
      }
    }
  }
}

Inference LstmDetector::infer(std::span<const hpc::HpcSample> window) const {
  if (window.empty()) return Inference::kBenign;
  // Feed the most recent max_bptt-ish chunk (long windows carry no extra
  // signal once the hidden state saturates, and this bounds inference cost).
  constexpr std::size_t kMaxSteps = 64;
  const std::size_t start =
      window.size() > kMaxSteps ? window.size() - kMaxSteps : 0;
  std::vector<std::vector<double>> seq;
  seq.reserve(window.size() - start);
  for (std::size_t i = start; i < window.size(); ++i) {
    const hpc::FeatureVec f = hpc::to_features(window[i]);
    seq.emplace_back(f.begin(), f.end());
  }
  return model_.predict(seq) > 0.5 ? Inference::kMalicious
                                   : Inference::kBenign;
}

std::uint64_t LstmDetector::state_hash() const { return model_.param_hash(); }

LstmDetector LstmDetector::make(const TraceSet& train, std::uint64_t seed,
                                LstmTrainOptions options) {
  options.seed = seed;
  Lstm model(LstmConfig{}, seed ^ 0xfeed);
  model.train(train, options);
  return LstmDetector(std::move(model));
}

}  // namespace valkyrie::ml
