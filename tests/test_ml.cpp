#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/detector.hpp"
#include "ml/gbt.hpp"
#include "ml/lstm.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/stat_detector.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"

namespace valkyrie::ml {
namespace {

// --- Shared synthetic corpus -------------------------------------------------
//
// Two well-separated HPC populations: "benign" (high instructions, low LLC
// misses) and "attack" (the reverse), with noise. Every model family must
// learn to separate them; that is the substrate of the Fig. 1 experiment.

hpc::HpcSample draw(util::Rng& rng, bool malicious) {
  hpc::HpcSample s;
  const double scale = malicious ? 1.0 : 8.0;
  s[hpc::Event::kInstructions] =
      std::max(0.0, rng.normal(3e8 * scale / 8.0, 2e7));
  s[hpc::Event::kCycles] = std::max(0.0, rng.normal(3.5e8, 1e7));
  s[hpc::Event::kLlcMisses] =
      std::max(0.0, rng.normal(malicious ? 4e7 : 4e5, malicious ? 4e6 : 8e4));
  s[hpc::Event::kL1dMisses] =
      std::max(0.0, rng.normal(malicious ? 6e7 : 2e6, malicious ? 5e6 : 3e5));
  s[hpc::Event::kMemBandwidth] =
      std::max(0.0, rng.normal(malicious ? 2e9 : 5e7, malicious ? 2e8 : 1e7));
  return s;
}

TraceSet make_corpus(int per_class, int trace_len, std::uint64_t seed) {
  util::Rng rng(seed);
  TraceSet set;
  for (int label = 0; label < 2; ++label) {
    for (int t = 0; t < per_class; ++t) {
      LabeledTrace trace;
      trace.malicious = label == 1;
      trace.name = (trace.malicious ? "attack-" : "benign-") +
                   std::to_string(t);
      for (int i = 0; i < trace_len; ++i) {
        trace.samples.push_back(draw(rng, trace.malicious));
      }
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

double trace_accuracy(const Detector& d, const TraceSet& set,
                      std::size_t window) {
  ConfusionMatrix cm;
  for (const LabeledTrace& t : set.traces) {
    const std::size_t n = std::min(window, t.samples.size());
    const bool malicious =
        d.infer({t.samples.data(), n}) == Inference::kMalicious;
    cm.record(t.malicious, malicious);
  }
  return cm.accuracy();
}

// --- Metrics -----------------------------------------------------------------

TEST(Metrics, PerfectClassifier) {
  ConfusionMatrix cm;
  for (int i = 0; i < 10; ++i) {
    cm.record(true, true);
    cm.record(false, false);
  }
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 1.0);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(Metrics, KnownValues) {
  ConfusionMatrix cm;
  cm.true_positives = 8;
  cm.false_negatives = 2;
  cm.false_positives = 4;
  cm.true_negatives = 6;
  EXPECT_DOUBLE_EQ(cm.precision(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.8);
  EXPECT_NEAR(cm.f1(), 2 * (8.0 / 12.0) * 0.8 / ((8.0 / 12.0) + 0.8), 1e-12);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 0.4);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.7);
  EXPECT_EQ(cm.total(), 20u);
}

TEST(Metrics, DegenerateCasesAreZeroNotNan) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 0.0);
}

TEST(Metrics, Accumulation) {
  ConfusionMatrix a;
  a.record(true, true);
  ConfusionMatrix b;
  b.record(false, true);
  a += b;
  EXPECT_EQ(a.true_positives, 1u);
  EXPECT_EQ(a.false_positives, 1u);
}

// --- Dataset -----------------------------------------------------------------

TEST(Dataset, FlattenKeepsLabelsAndCounts) {
  const TraceSet set = make_corpus(3, 5, 1);
  const std::vector<Example> flat = flatten(set);
  EXPECT_EQ(flat.size(), 2u * 3u * 5u);
  const auto malicious = static_cast<std::size_t>(
      std::count_if(flat.begin(), flat.end(),
                    [](const Example& e) { return e.malicious; }));
  EXPECT_EQ(malicious, 15u);
  EXPECT_EQ(flat.front().features.size(), hpc::kFeatureDim);
}

TEST(Dataset, SplitPreservesClassBalanceByTrace) {
  const TraceSet set = make_corpus(10, 3, 2);
  util::Rng rng(3);
  const TraceSplit split = split_traces(set, 0.7, rng);
  EXPECT_EQ(split.train.traces.size() + split.test.traces.size(), 20u);
  EXPECT_EQ(split.train.count_malicious(), 7u);
  EXPECT_EQ(split.test.count_malicious(), 3u);
  EXPECT_EQ(split.train.count_benign(), 7u);
}

TEST(Dataset, ShuffleIsPermutation) {
  std::vector<Example> xs;
  for (int i = 0; i < 20; ++i) {
    xs.push_back({{static_cast<double>(i)}, false});
  }
  util::Rng rng(4);
  shuffle(xs, rng);
  double sum = 0;
  for (const Example& e : xs) sum += e.features[0];
  EXPECT_DOUBLE_EQ(sum, 190.0);  // 0+..+19 preserved
}

TEST(Dataset, WindowFeaturesConcentrate) {
  // The variance features shrink in expectation as windows grow — the
  // statistical driver behind Fig. 1.
  util::Rng rng(5);
  LabeledTrace trace;
  for (int i = 0; i < 200; ++i) trace.samples.push_back(draw(rng, false));
  const auto f_small =
      window_features({trace.samples.data(), 3});
  const auto f_large =
      window_features({trace.samples.data(), trace.samples.size()});
  ASSERT_EQ(f_small.size(), kWindowFeatureDim);
  // Mean features agree to within noise; both are near the true mean.
  EXPECT_NEAR(f_small[0], f_large[0], 1.0);
}

// --- Statistical detector ----------------------------------------------------

TEST(StatDetector, SeparatesPopulations) {
  const TraceSet train = make_corpus(10, 20, 6);
  StatisticalDetector det;
  det.fit(flatten(train));
  const TraceSet test = make_corpus(10, 20, 7);
  EXPECT_GE(trace_accuracy(det, test, 1), 0.95);
}

TEST(StatDetector, ScoreLowForBenignHighForAttack) {
  const TraceSet train = make_corpus(10, 20, 8);
  StatisticalDetector det;
  det.fit(flatten(train));
  util::Rng rng(9);
  const auto benign_f = hpc::to_features(draw(rng, false));
  const auto attack_f = hpc::to_features(draw(rng, true));
  EXPECT_LT(det.score(benign_f), det.score(attack_f));
}

TEST(StatDetector, UntrainedThrows) {
  StatisticalDetector det;
  const std::vector<double> f(hpc::kFeatureDim, 0.0);
  EXPECT_THROW((void)det.score(f), std::logic_error);
}

TEST(StatDetector, NoBenignExamplesThrows) {
  StatisticalDetector det;
  std::vector<Example> only_attack{{std::vector<double>(12, 1.0), true}};
  EXPECT_THROW(det.fit(only_attack), std::invalid_argument);
}

TEST(StatDetector, EmptyWindowIsBenign) {
  StatisticalDetector det;
  EXPECT_EQ(det.infer(std::span<const hpc::HpcSample>{}), Inference::kBenign);
}

// --- MLP ---------------------------------------------------------------------

TEST(Mlp, RejectsBadArchitectures) {
  EXPECT_THROW(Mlp({4}), std::invalid_argument);
  EXPECT_THROW(Mlp({4, 2}), std::invalid_argument);  // output must be 1
}

TEST(Mlp, LearnsLinearlySeparableData) {
  util::Rng rng(10);
  std::vector<Example> xs;
  for (int i = 0; i < 400; ++i) {
    const bool pos = i % 2 == 0;
    const double base = pos ? 2.0 : -2.0;
    xs.push_back({{rng.normal(base, 0.5), rng.normal(-base, 0.5)}, pos});
  }
  Mlp mlp({2, 4, 1}, 11);
  MlpTrainOptions opts;
  opts.epochs = 40;
  mlp.train(xs, opts);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const bool pos = i % 2 == 0;
    const double base = pos ? 2.0 : -2.0;
    const std::vector<double> x{rng.normal(base, 0.5), rng.normal(-base, 0.5)};
    if ((mlp.predict(x) > 0.5) == pos) ++correct;
  }
  EXPECT_GE(correct, 190);
}

TEST(Mlp, SmallAnnDetectorSeparatesTraces) {
  const TraceSet train = make_corpus(12, 30, 12);
  const MlpDetector det = MlpDetector::make_small_ann(train, 13);
  const TraceSet test = make_corpus(8, 30, 14);
  EXPECT_GE(trace_accuracy(det, test, 30), 0.9);
  EXPECT_EQ(det.name(), "small-ann");
}

TEST(Mlp, LargeAnnArchitecture) {
  const TraceSet train = make_corpus(6, 10, 15);
  const MlpDetector det = MlpDetector::make_large_ann(train, 16);
  EXPECT_EQ(det.model().layer_sizes(),
            (std::vector<std::size_t>{kWindowFeatureDim, 8, 8, 1}));
}

TEST(Mlp, TrainRequiresBothClasses) {
  Mlp mlp({2, 2, 1});
  std::vector<Example> xs{{{1.0, 2.0}, true}};
  EXPECT_THROW(mlp.train(xs, {}), std::invalid_argument);
}

// --- SVM ---------------------------------------------------------------------

TEST(Svm, LearnsLinearlySeparableData) {
  util::Rng rng(17);
  std::vector<Example> xs;
  for (int i = 0; i < 400; ++i) {
    const bool pos = i % 2 == 0;
    const double base = pos ? 1.5 : -1.5;
    xs.push_back({{rng.normal(base, 0.4), rng.normal(base, 0.4)}, pos});
  }
  LinearSvm svm;
  svm.train(xs, {});
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const bool pos = i % 2 == 0;
    const double base = pos ? 1.5 : -1.5;
    const std::vector<double> x{rng.normal(base, 0.4), rng.normal(base, 0.4)};
    if ((svm.decision(x) > 0.0) == pos) ++correct;
  }
  EXPECT_GE(correct, 190);
}

TEST(Svm, DetectorMajorityVotesOverWindow) {
  const TraceSet train = make_corpus(10, 20, 18);
  const SvmDetector det = SvmDetector::make(train, 19);
  const TraceSet test = make_corpus(8, 20, 20);
  EXPECT_GE(trace_accuracy(det, test, 20), 0.9);
}

TEST(Svm, UntrainedThrows) {
  LinearSvm svm;
  EXPECT_THROW((void)svm.decision(std::vector<double>{1.0}), std::logic_error);
}

// --- GBT ---------------------------------------------------------------------

TEST(Gbt, LearnsNonLinearBoundary) {
  // XOR-ish: class = sign(x*y); trees must capture the interaction.
  util::Rng rng(21);
  std::vector<Example> xs;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    xs.push_back({{x, y}, x * y > 0});
  }
  GradientBoostedTrees gbt;
  gbt.train(xs);
  int correct = 0;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    if ((gbt.predict_logit({std::vector<double>{x, y}}) > 0) == (x * y > 0)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 270);
}

TEST(Gbt, DetectorSeparatesTraces) {
  const TraceSet train = make_corpus(10, 20, 22);
  const GbtDetector det = GbtDetector::make(train);
  const TraceSet test = make_corpus(8, 20, 23);
  EXPECT_GE(trace_accuracy(det, test, 20), 0.9);
  EXPECT_EQ(det.name(), "xgboost");
}

TEST(Gbt, PredictIsSigmoidOfLogit) {
  const TraceSet train = make_corpus(5, 10, 24);
  GradientBoostedTrees gbt;
  gbt.train(flatten(train));
  const std::vector<double> f(hpc::kFeatureDim, 1.0);
  const double p = gbt.predict(f);
  const double logit = gbt.predict_logit(f);
  EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-logit)), 1e-12);
}

TEST(Gbt, ConfigRespected) {
  GbtConfig cfg;
  cfg.num_trees = 7;
  GradientBoostedTrees gbt(cfg);
  gbt.train(flatten(make_corpus(5, 10, 25)));
  EXPECT_EQ(gbt.tree_count(), 7u);
}

TEST(Gbt, SingleClassThrows) {
  GradientBoostedTrees gbt;
  std::vector<Example> xs{{std::vector<double>{1.0}, true}};
  EXPECT_THROW(gbt.train(xs), std::invalid_argument);
}

// --- LSTM --------------------------------------------------------------------

TEST(Lstm, LearnsSequenceClassification) {
  const TraceSet train = make_corpus(10, 25, 26);
  LstmTrainOptions opts;
  opts.epochs = 12;
  const LstmDetector det = LstmDetector::make(train, 27, opts);
  const TraceSet test = make_corpus(8, 25, 28);
  EXPECT_GE(trace_accuracy(det, test, 25), 0.9);
}

TEST(Lstm, EmptySequencePredictsBenign) {
  Lstm model;
  EXPECT_DOUBLE_EQ(model.predict({}), 0.0);
  LstmDetector det(Lstm{});
  EXPECT_EQ(det.infer(std::span<const hpc::HpcSample>{}), Inference::kBenign);
}

TEST(Lstm, RejectsDimensionMismatch) {
  Lstm model;  // input dim = kFeatureDim
  const std::vector<std::vector<double>> bad{{1.0, 2.0}};
  EXPECT_THROW((void)model.predict(bad), std::invalid_argument);
}

TEST(Lstm, DefaultArchitectureMatchesPaper) {
  // Fig. 6b's detector: hidden layer of 8 nodes.
  const Lstm model;
  EXPECT_EQ(model.config().hidden_dim, 8u);
}

// Property: every detector family improves (or at least does not get
// worse) when given more measurements — the monotonic backbone of Fig. 1.
class WindowGrowth : public ::testing::TestWithParam<int> {};

TEST_P(WindowGrowth, MoreMeasurementsNoWorse) {
  // Use a harder corpus (closer populations) so small windows err.
  const TraceSet train = make_corpus(12, 40, 29);
  const SvmDetector det = SvmDetector::make(train, 30);
  const TraceSet test = make_corpus(10, 40, static_cast<std::uint64_t>(
                                                 31 + GetParam()));
  const double small = trace_accuracy(det, test, 2);
  const double large = trace_accuracy(det, test, 40);
  EXPECT_GE(large + 0.05, small);  // allow sampling slack
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowGrowth, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace valkyrie::ml
