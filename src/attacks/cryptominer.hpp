// Cryptominer workload — Fig. 6c. A double-SHA-256 proof-of-work search
// (Bitcoin-style): per epoch it grinds nonces, counting hashes and any
// nonce whose digest clears the difficulty target. Entirely CPU-bound, so
// the CPU actuator alone throttles it (paper: 99.04% average slowdown in
// the suspicious state).
#pragma once

#include <memory>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "sim/workload.hpp"

namespace valkyrie::attacks {

struct CryptominerConfig {
  std::string name = "cryptominer";
  /// Hash throughput at full CPU share (model hashes per second).
  double hashes_per_second = 1.8e6;
  /// Real double-SHA-256 invocations per epoch (the remainder of the
  /// accounted hash count follows the same loop, just not all executed).
  int real_hashes_per_epoch = 512;
  /// Difficulty: leading zero bits for a share to count as found.
  int difficulty_bits = 18;
  double family_jitter = 0.0;
  std::uint64_t seed = 0xc01;
};

class CryptominerAttack final : public sim::Workload {
 public:
  explicit CryptominerAttack(CryptominerConfig config = {});

  [[nodiscard]] std::string_view name() const override { return config_.name; }
  [[nodiscard]] bool is_attack() const override { return true; }
  [[nodiscard]] std::string_view progress_units() const override {
    return "hashes computed";
  }
  sim::StepResult run_epoch(const sim::ResourceShares& shares,
                            sim::EpochContext& ctx) override;
  [[nodiscard]] double total_progress() const override { return hashes_; }

  [[nodiscard]] std::uint64_t shares_found() const noexcept {
    return shares_found_;
  }

  [[nodiscard]] std::string_view snapshot_type() const override {
    return "attack.cryptominer";
  }
  void snapshot_save(util::ByteWriter& out) const override;
  static std::unique_ptr<sim::Workload> snapshot_load(util::ByteReader& in);

 private:
  CryptominerConfig config_;
  hpc::HpcSignature signature_;
  double hashes_ = 0.0;
  std::uint64_t shares_found_ = 0;
  std::uint64_t nonce_ = 0;
};

/// A small corpus of miner variants (different pools/coins tune loop shape).
[[nodiscard]] std::vector<CryptominerConfig> cryptominer_corpus(
    std::uint64_t seed = 0x52);

}  // namespace valkyrie::attacks
