// HPC signatures of the attack families (what the detectors actually see).
// Ratios follow the attacks' mechanics: Prime+Probe spies thrash the L1,
// rowhammer saturates DRAM bandwidth with LLC misses (clflush + access
// loops), ransomware mixes AES compute with file-system churn, cryptominers
// are pure high-IPC compute.
#pragma once

#include "hpc/hpc.hpp"

namespace valkyrie::attacks {

/// Spy processes of cache-contention attacks (L1-D/L1-I/LLC Prime+Probe).
[[nodiscard]] hpc::HpcSignature microarch_spy_signature(
    bool instruction_side = false);

/// TLB-contention spy (page-granular probing: DTLB misses dominate).
[[nodiscard]] hpc::HpcSignature tlb_spy_signature();

/// Store-buffer (TSA) covert-channel endpoints.
[[nodiscard]] hpc::HpcSignature tsa_signature();

/// Rowhammer hammering loop.
[[nodiscard]] hpc::HpcSignature rowhammer_signature();

/// Ransomware: encryption compute plus heavy file-system traffic.
/// `family_jitter` perturbs the base signature per sample family.
[[nodiscard]] hpc::HpcSignature ransomware_signature(double family_jitter = 0.0,
                                                     std::uint64_t seed = 0);

/// Ransomware directory-scan phase: VFS walking with little cipher
/// compute — per-epoch it resembles benign indexing/backup I/O.
[[nodiscard]] hpc::HpcSignature ransomware_scan_signature(
    double family_jitter = 0.0, std::uint64_t seed = 0);

/// Cryptominer hash loop.
[[nodiscard]] hpc::HpcSignature cryptominer_signature(double family_jitter = 0.0,
                                                      std::uint64_t seed = 0);

/// The Table II example attack (hash files, exfiltrate over the network).
[[nodiscard]] hpc::HpcSignature exfiltrator_signature();

}  // namespace valkyrie::attacks
