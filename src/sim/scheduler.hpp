// Completely-Fair-Scheduler-style weighted scheduler model (paper §VI-A).
//
// Linux CFS gives each runnable task a timeslice proportional to its weight:
//   timeslice_t = targeted_latency * w_t / sum(w)          (Eq. 7)
// with 40 discrete weight levels separated by a constant multiplicative step.
// Valkyrie's scheduler actuator moves a flagged process down (or back up)
// these levels as its threat index changes (Eq. 8, step gamma = 0.1 on the
// evaluation platforms).
//
// The model keeps real weights per process plus a constant "background"
// weight standing in for the rest of the system, so a single process's
// relative share behaves like a lightly loaded interactive machine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/pid_map.hpp"

namespace valkyrie::sim {

using ProcessId = std::uint32_t;

struct SchedulerConfig {
  /// CFS targeted latency: the window within which every runnable process
  /// should run once.
  double targeted_latency_ms = 24.0;
  /// Multiplicative weight step between adjacent levels (paper gamma).
  double gamma = 0.1;
  /// Number of discrete weight levels (Linux nice range is 40 levels).
  int weight_levels = 40;
  /// Default level for a fresh process (middle of the range).
  int default_level = 20;
  /// Weight of everything else running on the machine, in units of one
  /// default-level process. 9 background units means an unthrottled process
  /// owns ~10% of the machine, i.e. a lightly loaded desktop.
  double background_weight_units = 9.0;
  /// Fraction of its default share below which a process cannot be pushed
  /// (the paper's s_MIN; user-configurable slowdown cap lives on top).
  /// Must be strictly positive — CfsScheduler's constructor throws
  /// otherwise (a zero floor would stall a process outright).
  double min_share_fraction = 0.01;
};

/// One keyed row of the factor table, the snapshot-capture form. The factor
/// keeps the table's sign encoding: positive = runnable, negative = parked
/// retired weight (magnitude = last factor held). Zero never appears — a
/// pid with no weight simply has no entry.
struct SchedFactorEntry {
  ProcessId pid = 0;
  double factor = 0.0;
};

class CfsScheduler {
 public:
  explicit CfsScheduler(const SchedulerConfig& config = {});

  /// Pre-sizes the weight table for `max_pids` simultaneously tracked
  /// processes (runnable + parked), so admissions and retirements under
  /// steady-state churn never reallocate it. Unlike the dense-table era
  /// this bounds the PEAK TRACKED population, not the largest pid value —
  /// pids can grow without bound while the table stays this size.
  void reserve(std::size_t max_pids);

  void add_process(ProcessId pid);
  void remove_process(ProcessId pid);

  /// Batch admission/retirement. SimSystem retires through the batch form
  /// (one compaction pass removes the epoch's dead pids together); the
  /// single-pid calls above are wrappers over these.
  void add_processes(std::span<const ProcessId> pids);
  void remove_processes(std::span<const ProcessId> pids);

  /// Drops a PARKED (removed) pid's weight from the table entirely — the
  /// retention window closing on a retired process. No-op if the pid is
  /// unknown; throws std::logic_error if the pid is still runnable (a
  /// caller must remove before it forgets). After this, weight_factor(pid)
  /// throws: the retired-observability contract ends with the window.
  void forget_process(ProcessId pid);

  [[nodiscard]] bool has_process(ProcessId pid) const;

  /// Relative weight factor of the process vs. its default weight, in
  /// (0, 1]: 1 = untouched, lower = demoted by the actuator. For a removed
  /// (retired) process this keeps answering with the last weight it held —
  /// the same retired-observability contract SimSystem's pid-addressed
  /// accessors keep — until forget_process reclaims the entry.
  [[nodiscard]] double weight_factor(ProcessId pid) const;

  /// Applies Eq. 8 with the configured gamma for a threat-index change of
  /// `delta_threat` (positive = demote, negative = promote). The factor is
  /// clamped to [min_share_fraction, 1]. A no-op for removed processes
  /// (a late command against an already-retired pid must not resurrect
  /// its weight).
  void apply_threat_delta(ProcessId pid, double delta_threat);

  /// Restores the default weight (Areset on the CPU resource). No-op for
  /// removed processes, like apply_threat_delta.
  void reset_weight(ProcessId pid);

  /// The CPU share this process receives, as a fraction of the share an
  /// un-demoted process would get: weight / (weight + others + background),
  /// normalised so an untouched process reads 1.0.
  [[nodiscard]] double normalized_share(ProcessId pid) const;

  /// O(1) variant for callers that computed total_weight() once for the
  /// epoch (the engine's serial share phase): summing all weights per
  /// process would make one epoch O(P^2). Bit-identical to the overload
  /// above as long as `total` is this scheduler's current total_weight().
  [[nodiscard]] double normalized_share(ProcessId pid, double total) const;

  /// The share math of normalized_share from an already-fetched raw factor
  /// (sign ignored) — the hash-free hot path: SimSystem batch-gathers the
  /// live factors once per epoch (gather_factors) and computes each slot's
  /// share from the cached value. Bit-identical to
  /// normalized_share(pid, total) for the factor stored under `pid`.
  [[nodiscard]] static double share_from_factor(double raw_factor,
                                                double total);

  /// Sum of every runnable process's weight factor plus the background
  /// weight. Gathers and sums in ascending-pid order (bit-deterministic
  /// regardless of hash-table layout); O(tracked) with an allocation —
  /// epoch loops use the span overload or gather_factors instead.
  [[nodiscard]] double total_weight() const;

  /// Churn-proof variant: sums the factors of exactly the given live pids
  /// (plus background), in span order. Bit-identical to total_weight()
  /// whenever `live` is every runnable pid in ascending order — which
  /// SimSystem's slot list guarantees (stable compaction keeps slot order
  /// ascending-pid). Uses the batched prefetching lookup.
  [[nodiscard]] double total_weight(std::span<const ProcessId> live) const;

  /// Batched raw-factor gather: out[i] = the signed stored factor for
  /// pids[i], or 0.0 when the pid has no entry. One prefetching pass; the
  /// per-epoch share loop runs off this cache instead of hashing per slot.
  void gather_factors(std::span<const ProcessId> pids,
                      std::span<double> out) const;

  /// Absolute share of machine CPU (Eq. 7's s_t), before normalisation.
  [[nodiscard]] double absolute_share(ProcessId pid) const;

  /// CFS timeslice for the process within one targeted-latency window.
  [[nodiscard]] double timeslice_ms(ProcessId pid) const;

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

  /// The factor table as keyed entries sorted by ascending pid — the
  /// canonical snapshot form (hash-layout-independent, so capture bytes
  /// are identical across capacity histories). Sign encoding preserved.
  [[nodiscard]] std::vector<SchedFactorEntry> factor_entries() const;

  /// Replaces the whole factor table from snapshot entries. The encoding
  /// (positive / negative) is restored verbatim, so parked retired weights
  /// stay observable exactly as at capture time.
  void restore_factor_entries(std::span<const SchedFactorEntry> entries);

  /// Entry count (runnable + parked), for the bounded-capacity tests.
  [[nodiscard]] std::size_t table_size() const noexcept {
    return factor_.size();
  }
  /// Hash-table bucket count — the leak regression tests pin that this
  /// stays bounded under churn once retirement reclamation runs.
  [[nodiscard]] std::size_t table_capacity() const noexcept {
    return factor_.capacity();
  }

 private:
  SchedulerConfig config_;
  // pid -> weight factor, robin-hood hashed (util::PidMap). Two states
  // share the one value: a positive value is a runnable process's factor; a
  // NEGATIVE value parks a removed (retired) process — the magnitude is the
  // last factor it held, kept readable for post-mortem observers while
  // total_weight() no longer counts it. A pid with no entry was never
  // added, or had its parked weight reclaimed by forget_process. The sign
  // encoding is airtight because a runnable factor is clamped to
  // [min_share_fraction, 1] with min_share_fraction > 0, so a negative
  // never collides with a live weight. Unlike the dense pid-indexed table
  // this used to be, memory is O(tracked processes), not O(largest pid):
  // under churn with reclamation the table stays flat forever.
  util::PidMap<double> factor_;
};

}  // namespace valkyrie::sim
