#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace valkyrie::sim {

CfsScheduler::CfsScheduler(const SchedulerConfig& config) : config_(config) {
  assert(config_.gamma > 0.0 && config_.gamma < 1.0);
  assert(config_.background_weight_units >= 0.0);
  // Thrown, not asserted: release builds compile asserts out, and a zero
  // floor would stall a process entirely — the paper's s_MIN is strictly
  // positive. (It also backs the sign encoding: a clamped live factor can
  // never be 0 or negative, so parked negatives are unambiguous.)
  if (config_.min_share_fraction <= 0.0) {
    throw std::invalid_argument(
        "CfsScheduler: min_share_fraction must be positive");
  }
}

void CfsScheduler::reserve(std::size_t max_pids) { factor_.reserve(max_pids); }

void CfsScheduler::add_process(ProcessId pid) {
  add_processes({&pid, 1});
}

void CfsScheduler::remove_process(ProcessId pid) {
  remove_processes({&pid, 1});
}

void CfsScheduler::add_processes(std::span<const ProcessId> pids) {
  // Emplace semantics for a pid that is already runnable (no overwrite of
  // an actuator-demoted weight); a parked pid re-enters at default weight.
  for (const ProcessId pid : pids) {
    if (double* factor = factor_.find(pid)) {
      if (*factor <= 0.0) *factor = 1.0;
    } else {
      factor_.insert(pid, 1.0);
    }
  }
}

void CfsScheduler::remove_processes(std::span<const ProcessId> pids) {
  // Park rather than erase: the magnitude stays readable as the last
  // weight the process held, the sign takes it out of every total. The
  // entry itself leaves the table only when forget_process reclaims it
  // (retention window closing) — parked weights no longer leak forever.
  for (const ProcessId pid : pids) {
    double* factor = factor_.find(pid);
    if (factor != nullptr && *factor > 0.0) *factor = -*factor;
  }
}

void CfsScheduler::forget_process(ProcessId pid) {
  const double* factor = factor_.find(pid);
  if (factor == nullptr) return;  // already reclaimed (idempotent)
  if (*factor > 0.0) {
    throw std::logic_error(
        "CfsScheduler: forget_process on a runnable pid (remove it first)");
  }
  factor_.erase(pid);
}

bool CfsScheduler::has_process(ProcessId pid) const {
  const double* factor = factor_.find(pid);
  return factor != nullptr && *factor > 0.0;
}

double CfsScheduler::weight_factor(ProcessId pid) const {
  const double* factor = factor_.find(pid);
  if (factor == nullptr) {
    throw std::out_of_range("CfsScheduler: unknown process id");
  }
  // std::abs: a parked (removed) pid answers with its final weight.
  return std::abs(*factor);
}

void CfsScheduler::apply_threat_delta(ProcessId pid, double delta_threat) {
  double* factor = factor_.find(pid);
  if (factor == nullptr) {
    throw std::out_of_range("CfsScheduler: unknown process id");
  }
  if (*factor < 0.0) return;  // parked: never resurrect a dead weight
  // Eq. 8: s_i = s_{i-1} -/+ gamma * s_{i-1} * |dT| for rising/falling
  // threat. A drop of gamma per unit of threat change, multiplicative.
  const double s = *factor * (1.0 - config_.gamma * delta_threat);
  *factor = std::clamp(s, config_.min_share_fraction, 1.0);
}

void CfsScheduler::reset_weight(ProcessId pid) {
  double* factor = factor_.find(pid);
  if (factor == nullptr) {
    throw std::out_of_range("CfsScheduler: unknown process id");
  }
  if (*factor < 0.0) return;  // parked: see apply_threat_delta
  *factor = 1.0;
}

double CfsScheduler::total_weight() const {
  // Ascending-pid accumulation: FP addition is order-sensitive, and hash
  // bucket order depends on the table's capacity history (which differs
  // across restore), so the sum MUST be canonicalised to stay bit-stable.
  // Skipping absent pids is exact — the dense-era pass added literal 0.0
  // for them, and x + 0.0 == x for every non-negative partial sum here.
  double total = config_.background_weight_units;
  for (const SchedFactorEntry& entry : factor_entries()) {
    total += std::max(entry.factor, 0.0);
  }
  return total;
}

double CfsScheduler::total_weight(std::span<const ProcessId> live) const {
  double total = config_.background_weight_units;
  // Same max(f, 0) guard as the whole-table pass: a live factor is always
  // positive (identity under max), and a pid a caller removed behind the
  // system's back contributes 0 rather than silently shrinking the total
  // with its parked negative. Absent pids likewise contribute 0.
  factor_.find_many(live, [&](std::size_t, const double* factor) {
    if (factor != nullptr) total += std::max(*factor, 0.0);
  });
  return total;
}

void CfsScheduler::gather_factors(std::span<const ProcessId> pids,
                                  std::span<double> out) const {
  assert(out.size() >= pids.size());
  factor_.find_many(pids, [&](std::size_t i, const double* factor) {
    out[i] = factor != nullptr ? *factor : 0.0;
  });
}

double CfsScheduler::absolute_share(ProcessId pid) const {
  const double w = weight_factor(pid);
  const double total = total_weight();
  return total > 0.0 ? w / total : 0.0;
}

double CfsScheduler::normalized_share(ProcessId pid) const {
  return normalized_share(pid, total_weight());
}

double CfsScheduler::normalized_share(ProcessId pid, double total) const {
  return share_from_factor(weight_factor(pid), total);
}

double CfsScheduler::share_from_factor(double raw_factor, double total) {
  const double w = std::abs(raw_factor);
  // Untouched process: share_now and share_default are the same 1/total,
  // so the ratio is exactly 1.0. The total - 1 + 1 == total guard proves
  // the slow path would compute identical bits (it fails only at absurd
  // totals where the round-trip rounds), and skipping three divides
  // matters — this runs once per live process per epoch.
  if (w == 1.0 && total - 1.0 + 1.0 == total && total > 0.0) return 1.0;
  // Share this process would have at default weight, holding the others at
  // their current weights.
  const double total_default = total - w + 1.0;
  const double share_now = w / total;
  const double share_default = 1.0 / total_default;
  return share_default > 0.0 ? std::min(1.0, share_now / share_default) : 0.0;
}

double CfsScheduler::timeslice_ms(ProcessId pid) const {
  return config_.targeted_latency_ms * absolute_share(pid);
}

std::vector<SchedFactorEntry> CfsScheduler::factor_entries() const {
  std::vector<SchedFactorEntry> entries;
  entries.reserve(factor_.size());
  factor_.for_each([&](ProcessId pid, const double& factor) {
    entries.push_back({pid, factor});
  });
  std::sort(entries.begin(), entries.end(),
            [](const SchedFactorEntry& a, const SchedFactorEntry& b) {
              return a.pid < b.pid;
            });
  return entries;
}

void CfsScheduler::restore_factor_entries(
    std::span<const SchedFactorEntry> entries) {
  factor_.clear();
  factor_.reserve(entries.size());
  for (const SchedFactorEntry& entry : entries) {
    factor_.insert(entry.pid, entry.factor);
  }
}

}  // namespace valkyrie::sim
