// Scenario: a busy shared box under process churn, attacked mid-run.
//
// The population is open — benign programs arrive under Poisson churn,
// run for a while and leave — and at epoch 60 a staged cryptominer campaign
// starts dropping miners onto the machine, one every 4 epochs. Every
// arrival is attached to the Valkyrie engine the moment it is admitted
// (mid-run attach is an epoch-boundary lifecycle op), so the response
// policy throttles each miner as its threat index climbs and terminates it
// once the measurement budget is spent — while the churning benign
// population keeps (almost all of) its throughput.
//
//   ./build/churn_campaign
#include <cstdio>
#include <memory>
#include <string>

#include "attacks/cryptominer.hpp"
#include "core/traces.hpp"
#include "core/valkyrie.hpp"
#include "ml/svm.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"
#include "workloads/benchmarks.hpp"

using namespace valkyrie;

int main() {
  // Offline phase: train a linear SVM on cryptominer vs. benign traces.
  std::printf("collecting traces (miners + SPEC-2006 benign)...\n");
  std::vector<core::WorkloadFactory> corpus;
  for (const attacks::CryptominerConfig& cfg : attacks::cryptominer_corpus()) {
    corpus.push_back(
        [cfg] { return std::make_unique<attacks::CryptominerAttack>(cfg); });
  }
  for (const auto& spec : workloads::spec2006()) {
    corpus.push_back([spec] {
      return std::make_unique<workloads::BenchmarkWorkload>(spec);
    });
  }
  const ml::TraceSet traces = core::collect_traces(corpus, 30);
  const ml::SvmDetector detector = ml::SvmDetector::make(traces, 3);

  // Online phase: an open population fed by a declarative script.
  sim::SimSystem sys;
  core::ValkyrieEngine engine(sys, detector, /*worker_threads=*/2);

  sim::ScenarioScript script;
  script.seed = 0xc0de;
  script.initial_processes = 48;   // the standing benign population
  script.arrival_rate = 1.5;       // Poisson churn, arrivals per epoch
  script.attack_fraction = 0.0;    // the stream itself is clean...
  script.mean_lifetime = 80;       // ...and programs live ~8 s (100 ms epochs)
  script.kill_exit_fraction = 0.4; // some leave by kill, most run to completion
  script.campaigns.push_back({
      .start_epoch = 60, .count = 6, .stagger = 4,
      .family = sim::AttackFamily::kCryptominer});
  script.monitor_config.required_measurements = 12;
  script.recycle_histories = false;  // keep post-mortems for the census below

  sim::ScenarioDriver driver(engine, script);

  constexpr std::size_t kEpochs = 240;
  util::TextTable timeline({"epoch", "live", "spawned", "attacks", "policy kills"});
  const std::size_t expected = driver.expected_processes(kEpochs);
  sys.reserve(expected);
  engine.reserve(expected);
  sys.reserve_history(kEpochs);
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const std::size_t live = driver.step();
    if ((epoch + 1) % 30 == 0) {
      const auto& s = driver.stats();
      timeline.add_row({std::to_string(epoch + 1), std::to_string(live),
                        std::to_string(s.spawned),
                        std::to_string(s.attack_spawned),
                        std::to_string(s.policy_kills)});
    }
  }
  std::printf("%s\n", timeline.render().c_str());

  // Census over every process the run ever admitted.
  std::size_t miners_terminated = 0;
  std::size_t miners_alive = 0;
  std::size_t benign_killed = 0;
  double miner_hashes = 0.0;
  for (sim::ProcessId pid = 0; pid < sys.total_spawned(); ++pid) {
    const bool attack = sys.workload(pid).is_attack();
    const sim::ExitReason exit = sys.exit_reason(pid);
    if (attack) {
      miner_hashes += sys.workload(pid).total_progress();
      if (exit == sim::ExitReason::kKilled) ++miners_terminated;
      if (exit == sim::ExitReason::kRunning) ++miners_alive;
    } else if (exit == sim::ExitReason::kKilled) {
      ++benign_killed;
    }
  }
  const auto& s = driver.stats();
  // Scheduled departures leave as kills too; the difference is what the
  // response itself terminated.
  const std::size_t benign_policy_kills = benign_killed - s.driver_kills;

  std::printf(
      "churn: %zu processes over %llu epochs (mean live %.0f, peak %zu), "
      "%zu scheduled departures, %zu natural completions\n",
      s.spawned, static_cast<unsigned long long>(s.epochs), s.mean_live(),
      s.peak_live, s.driver_kills, s.completed);
  std::printf(
      "campaign: %zu miners injected mid-run -> %zu terminated by the "
      "policy, %zu still alive (total %.2e hashes before termination)\n",
      s.attack_spawned, miners_terminated, miners_alive, miner_hashes);
  std::printf("benign processes terminated by the policy: %zu\n",
              benign_policy_kills);
  return miners_terminated == s.attack_spawned ? 0 : 1;
}
