// Fig. 6a: bit flips induced by the rowhammer attack with and without
// Valkyrie (HPC statistical detector + OS-scheduler actuator, Table III).
//
// Paper: unthrottled, the attack flips a bit roughly every 29 hammer
// iterations on the evaluation DIMM; with Valkyrie the CPU share falls
// below the disturbance-rate threshold and *zero* flips are observed even
// after a day of execution — a 100% slowdown.
#include <cstdio>
#include <memory>

#include "attacks/rowhammer.hpp"
#include "bench_common.hpp"
#include "core/valkyrie.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"

namespace {
using namespace valkyrie;
}

int main() {
  std::printf("== Fig. 6a: rowhammer bit flips with/without Valkyrie ==\n\n");
  const ml::StatisticalDetector detector = bench::trained_stat_detector();

  sim::SimSystem base_sys(sim::PlatformProfile{}, 0x6a);
  const sim::ProcessId base_pid =
      base_sys.spawn(std::make_unique<attacks::RowhammerAttack>());

  sim::SimSystem v_sys(sim::PlatformProfile{}, 0x6a);
  const sim::ProcessId v_pid =
      v_sys.spawn(std::make_unique<attacks::RowhammerAttack>());
  core::ValkyrieEngine engine(v_sys, detector);
  core::ValkyrieConfig cfg;
  cfg.required_measurements = 200;  // hold in suspicious state to show rate
  engine.attach(v_pid, cfg, std::make_unique<core::SchedulerWeightActuator>());

  util::TextTable table({"epoch", "flips (no Valkyrie)", "flips (Valkyrie)",
                         "iterations (Valkyrie)"});
  constexpr int kEpochs = 120;
  constexpr int kSettleEpoch = 10;  // Eq. 8 ramp completes well before this
  std::uint64_t v_flips_at_settle = 0;
  for (int e = 1; e <= kEpochs; ++e) {
    base_sys.run_epoch();
    engine.step();
    if (e == kSettleEpoch) {
      v_flips_at_settle = dynamic_cast<const attacks::RowhammerAttack&>(
                              v_sys.workload(v_pid))
                              .dram()
                              .total_bit_flips();
    }
    if (e % 20 == 0 || e == 1 || e == 5 || e == 10) {
      const auto& base =
          dynamic_cast<const attacks::RowhammerAttack&>(base_sys.workload(base_pid));
      const auto& throttled =
          dynamic_cast<const attacks::RowhammerAttack&>(v_sys.workload(v_pid));
      table.add_row({std::to_string(e),
                     std::to_string(base.dram().total_bit_flips()),
                     std::to_string(throttled.dram().total_bit_flips()),
                     std::to_string(throttled.hammer_iterations())});
    }
  }
  std::printf("%s\n", table.render().c_str());

  const auto& base =
      dynamic_cast<const attacks::RowhammerAttack&>(base_sys.workload(base_pid));
  const auto& throttled =
      dynamic_cast<const attacks::RowhammerAttack&>(v_sys.workload(v_pid));
  const double base_flips = static_cast<double>(base.dram().total_bit_flips());
  const std::uint64_t v_flips_settled =
      throttled.dram().total_bit_flips() - v_flips_at_settle;
  std::printf(
      "unthrottled flip rate: %.2f flips/epoch; with Valkyrie: %llu flips in "
      "the %d epochs after the Eq. 8 ramp settled\n",
      base_flips / kEpochs,
      static_cast<unsigned long long>(v_flips_settled),
      kEpochs - kSettleEpoch);
  std::printf(
      "steady-state slowdown: %.1f%% (paper: 100%% — no flips in a day of "
      "suspicious-state execution)\n",
      100.0 * (1.0 - static_cast<double>(v_flips_settled) /
                         std::max(base_flips * (kEpochs - kSettleEpoch) /
                                      kEpochs,
                                  1.0)));
  return 0;
}
